package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"coolpim/internal/units"
)

// EventKind names one event type of the trace taxonomy. Kinds use a
// dotted <subsystem>.<event> scheme so traces can be filtered by prefix.
type EventKind string

// The event taxonomy. Each kind documents its JSON payload fields.
const (
	// EvWarnRaise / EvWarnClear mark the cube entering/leaving the
	// thermal-warning state (ERRSTAT 0x01 set in response tails).
	// Fields: temp_c.
	EvWarnRaise EventKind = "thermal.warning.raise"
	EvWarnClear EventKind = "thermal.warning.clear"
	// EvPhase marks a DRAM derating phase transition (Table IV).
	// Fields: from, to, temp_c.
	EvPhase EventKind = "thermal.phase"
	// EvShutdown marks the cube exceeding the 105 °C operating limit.
	// Fields: temp_c.
	EvShutdown EventKind = "thermal.shutdown"
	// EvPoolInit records a throttling mechanism's initial capacity.
	// Fields: mechanism, size.
	EvPoolInit EventKind = "pool.init"
	// EvPoolResize records one control update: a SW-DynT token-pool
	// reduction or a HW-DynT aggregate PCU-limit step.
	// Fields: mechanism, from, to, reason ("warning" or "critical").
	EvPoolResize EventKind = "pool.resize"
	// EvOffloadAccept / EvOffloadReject record the block-launch offload
	// decision: whether the thread-block manager launched the PIM-enabled
	// kernel (token acquired / PCU path) or the non-PIM shadow kernel.
	// Fields: sm, block.
	EvOffloadAccept EventKind = "offload.accept"
	EvOffloadReject EventKind = "offload.reject"
	// EvBackpressure records link-layer credit flow control delaying a
	// request's acceptance beyond its serialization time (a congested
	// bank holding back the sender). Fields: link, wait_ns. Rate-limited
	// by default in system wiring — see Tracer.SetMinGap.
	EvBackpressure EventKind = "link.backpressure"
)

// Event is one trace record. Data holds the pre-rendered JSON payload
// fields (without braces), e.g. `"temp_c":86.20`.
type Event struct {
	At   units.Time
	Kind EventKind
	Data string
}

// Tracer collects the structured event stream of one run. Events are
// appended in emission order; because the simulation engine executes
// events in non-decreasing time order, trace timestamps are
// monotonically non-decreasing. A nil *Tracer is the disabled state:
// every emit method returns immediately without allocating.
type Tracer struct {
	events     []Event
	minGap     map[EventKind]units.Time
	lastAt     map[EventKind]units.Time
	suppressed map[EventKind]uint64
	maxEvents  int
	dropped    uint64
	flight     *FlightRecorder
}

// DefaultMaxEvents caps the in-memory trace; beyond it events are
// dropped and counted, so a runaway emitter cannot exhaust memory.
const DefaultMaxEvents = 4 << 20

// NewTracer returns an enabled, empty tracer.
func NewTracer() *Tracer {
	return &Tracer{
		minGap:     make(map[EventKind]units.Time),
		lastAt:     make(map[EventKind]units.Time),
		suppressed: make(map[EventKind]uint64),
		maxEvents:  DefaultMaxEvents,
	}
}

// SetMinGap rate-limits a kind: events closer than gap to the previously
// emitted event of the same kind are counted but not recorded. Used for
// high-frequency conditions (link backpressure can fire per request).
//
//coolpim:hotpath nilfast wiring setter; nil tracer returns immediately
func (t *Tracer) SetMinGap(kind EventKind, gap units.Time) {
	if t == nil {
		return
	}
	t.minGap[kind] = gap
}

// SetFlight attaches a flight recorder that receives a copy of every
// recorded (non-suppressed, non-dropped) event.
//
//coolpim:hotpath nilfast wiring setter; nil tracer returns immediately
func (t *Tracer) SetFlight(fr *FlightRecorder) {
	if t == nil {
		return
	}
	t.flight = fr
}

func (t *Tracer) emit(at units.Time, kind EventKind, data string) {
	if gap := t.minGap[kind]; gap > 0 {
		if last, seen := t.lastAt[kind]; seen && at-last < gap {
			t.suppressed[kind]++
			return
		}
		t.lastAt[kind] = at
	}
	if len(t.events) >= t.maxEvents {
		t.dropped++
		return
	}
	t.events = append(t.events, Event{At: at, Kind: kind, Data: data})
	if t.flight != nil {
		fd := fmt.Sprintf(`"kind":%q`, string(kind))
		if data != "" {
			fd += "," + data
		}
		t.flight.Record(at, "event", fd)
	}
}

// Emit records a generic event; data must be a valid JSON object body
// (comma-separated `"key":value` pairs) or empty.
//
//coolpim:hotpath nilfast disabled (nil) tracer emits are no-ops (TestNilTracerZeroAlloc pins this)
func (t *Tracer) Emit(at units.Time, kind EventKind, data string) {
	if t == nil {
		return
	}
	t.emit(at, kind, data)
}

// ThermalWarning records the cube raising (raised=true) or clearing the
// thermal-warning state.
//
//coolpim:hotpath nilfast disabled-tracer emit is a no-op
func (t *Tracer) ThermalWarning(at units.Time, raised bool, temp units.Celsius) {
	if t == nil {
		return
	}
	kind := EvWarnRaise
	if !raised {
		kind = EvWarnClear
	}
	t.emit(at, kind, fmt.Sprintf(`"temp_c":%.2f`, float64(temp)))
}

// PhaseTransition records a DRAM derating phase change.
//
//coolpim:hotpath nilfast disabled-tracer emit is a no-op
func (t *Tracer) PhaseTransition(at units.Time, from, to string, temp units.Celsius) {
	if t == nil {
		return
	}
	t.emit(at, EvPhase, fmt.Sprintf(`"from":%q,"to":%q,"temp_c":%.2f`, from, to, float64(temp)))
}

// Shutdown records a thermal shutdown.
//
//coolpim:hotpath nilfast disabled-tracer emit is a no-op
func (t *Tracer) Shutdown(at units.Time, temp units.Celsius) {
	if t == nil {
		return
	}
	t.emit(at, EvShutdown, fmt.Sprintf(`"temp_c":%.2f`, float64(temp)))
}

// PoolInit records a throttling mechanism's initial capacity.
//
//coolpim:hotpath nilfast disabled-tracer emit is a no-op
func (t *Tracer) PoolInit(at units.Time, mechanism string, size int) {
	if t == nil {
		return
	}
	t.emit(at, EvPoolInit, fmt.Sprintf(`"mechanism":%q,"size":%d`, mechanism, size))
}

// PoolResize records one control update of a throttling mechanism.
//
//coolpim:hotpath nilfast disabled-tracer emit is a no-op
func (t *Tracer) PoolResize(at units.Time, mechanism string, from, to int, reason string) {
	if t == nil {
		return
	}
	t.emit(at, EvPoolResize, fmt.Sprintf(`"mechanism":%q,"from":%d,"to":%d,"reason":%q`,
		mechanism, from, to, reason))
}

// OffloadBlock records a block-launch offload decision.
//
//coolpim:hotpath nilfast disabled-tracer emit is a no-op
func (t *Tracer) OffloadBlock(at units.Time, accepted bool, sm, block int) {
	if t == nil {
		return
	}
	kind := EvOffloadAccept
	if !accepted {
		kind = EvOffloadReject
	}
	t.emit(at, kind, fmt.Sprintf(`"sm":%d,"block":%d`, sm, block))
}

// LinkBackpressure records credit flow control delaying acceptance on a
// link by wait.
//
//coolpim:hotpath nilfast disabled-tracer emit is a no-op
func (t *Tracer) LinkBackpressure(at units.Time, link int, wait units.Time) {
	if t == nil {
		return
	}
	t.emit(at, EvBackpressure, fmt.Sprintf(`"link":%d,"wait_ns":%.1f`, link, wait.Nanoseconds()))
}

// Len returns the number of recorded events.
//
//coolpim:hotpath nilfast disabled-tracer read is allocation-free
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Dropped returns how many events the in-memory cap discarded.
//
//coolpim:hotpath nilfast disabled-tracer read is allocation-free
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Events returns the recorded events (shared slice; callers must not
// mutate).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// KindCount is one row of the by-kind event summary.
type KindCount struct {
	Kind       EventKind
	Count      uint64
	Suppressed uint64
}

// CountsByKind returns recorded (and rate-limited) event counts per
// kind, sorted by kind name.
func (t *Tracer) CountsByKind() []KindCount {
	if t == nil {
		return nil
	}
	counts := make(map[EventKind]uint64)
	for _, e := range t.events {
		counts[e.Kind]++
	}
	kinds := make(map[EventKind]bool)
	for k := range counts {
		kinds[k] = true
	}
	for k := range t.suppressed {
		kinds[k] = true
	}
	var out []KindCount
	for k := range kinds {
		out = append(out, KindCount{Kind: k, Count: counts[k], Suppressed: t.suppressed[k]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// WriteJSONL writes the trace as one JSON object per line:
//
//	{"t_ps":1234000,"t_ms":0.001234,"kind":"thermal.warning.raise","temp_c":86.20}
//
// t_ps is the exact simulated timestamp in picoseconds; t_ms is the same
// instant in milliseconds for human and plotting convenience.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	return WriteEventsJSONL(w, t.events)
}

// WriteEventsJSONL writes events in the Tracer.WriteJSONL line format.
func WriteEventsJSONL(w io.Writer, events []Event) error {
	var sb strings.Builder
	for _, e := range events {
		sb.Reset()
		writeEventLine(&sb, e)
		if _, err := io.WriteString(w, sb.String()); err != nil {
			return err
		}
	}
	return nil
}

func writeEventLine(sb *strings.Builder, e Event) {
	fmt.Fprintf(sb, `{"t_ps":%d,"t_ms":%.6f,"kind":%q`, int64(e.At), e.At.Milliseconds(), string(e.Kind))
	if e.Data != "" {
		sb.WriteByte(',')
		sb.WriteString(e.Data)
	}
	sb.WriteString("}\n")
}

// ParseJSONL parses a WriteJSONL trace back into events. The parse is
// exact: each line's fixed prefix is re-derived from the parsed t_ps
// and kind and verified byte-for-byte, and the remainder becomes the
// event's Data verbatim — so WriteEventsJSONL(ParseJSONL(x)) == x.
func ParseJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	var sb strings.Builder
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		var rec struct {
			TPs  int64  `json:"t_ps"`
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return nil, fmt.Errorf("telemetry: trace line %d: %w", lineNo, err)
		}
		e := Event{At: units.Time(rec.TPs), Kind: EventKind(rec.Kind)}
		sb.Reset()
		fmt.Fprintf(&sb, `{"t_ps":%d,"t_ms":%.6f,"kind":%q`, rec.TPs, e.At.Milliseconds(), rec.Kind)
		prefix := sb.String()
		if !strings.HasPrefix(line, prefix) || !strings.HasSuffix(line, "}") {
			return nil, fmt.Errorf("telemetry: trace line %d: not in canonical WriteJSONL form", lineNo)
		}
		rest := line[len(prefix) : len(line)-1]
		if rest != "" {
			if rest[0] != ',' {
				return nil, fmt.Errorf("telemetry: trace line %d: malformed payload", lineNo)
			}
			e.Data = rest[1:]
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
