package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"coolpim/internal/sim"
	"coolpim/internal/units"
)

// Series is a periodic time-series sampler: a set of named columns
// (callbacks reading the live simulation state) recorded at a fixed
// simulated cadence by the engine's Every ticker, exported as CSV with
// one aligned row per sample — the machine-readable form of the paper's
// Fig. 8/14 temperature/PIM-rate traces.
type Series struct {
	cols  []seriesColumn
	times []units.Time
	rows  [][]float64
}

type seriesColumn struct {
	name string
	fn   func(now units.Time) float64
}

// NewSeries returns an empty sampler.
func NewSeries() *Series { return &Series{} }

// AddColumn registers a column. Columns are evaluated in registration
// order on every sample; fn reads whatever live state it closes over.
// Columns must be added before the first Record.
func (s *Series) AddColumn(name string, fn func(now units.Time) float64) {
	if s == nil {
		return
	}
	if len(s.rows) > 0 {
		panic("telemetry: AddColumn after sampling started")
	}
	for _, c := range s.cols {
		if c.name == name {
			panic(fmt.Sprintf("telemetry: duplicate series column %q", name))
		}
	}
	s.cols = append(s.cols, seriesColumn{name: name, fn: fn})
}

// Record takes one sample now.
func (s *Series) Record(now units.Time) {
	if s == nil {
		return
	}
	row := make([]float64, len(s.cols))
	for i, c := range s.cols {
		row[i] = c.fn(now)
	}
	s.times = append(s.times, now)
	s.rows = append(s.rows, row)
}

// Start schedules periodic sampling on the engine, one sample every
// period starting one period from now, under the "telemetry" component
// label. Sampling stops when stop (if non-nil) returns true; the run's
// final state still lands in the last sample because stop is evaluated
// after recording.
func (s *Series) Start(eng *sim.Engine, period units.Time, stop func() bool) {
	if s == nil {
		return
	}
	eng.EveryNamed(period, "telemetry", func(now units.Time) bool {
		s.Record(now)
		return stop == nil || !stop()
	})
}

// Len returns the number of recorded samples.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	return len(s.times)
}

// Columns returns the column names in order.
func (s *Series) Columns() []string {
	if s == nil {
		return nil
	}
	out := make([]string, len(s.cols))
	for i, c := range s.cols {
		out[i] = c.name
	}
	return out
}

// Value returns the recorded value of column name at sample i.
func (s *Series) Value(i int, name string) (float64, bool) {
	if s == nil || i < 0 || i >= len(s.rows) {
		return 0, false
	}
	for j, c := range s.cols {
		if c.name == name {
			return s.rows[i][j], true
		}
	}
	return 0, false
}

// WriteCSV writes the series with a t_ms time column followed by every
// registered column, one row per sample.
func (s *Series) WriteCSV(w io.Writer) error {
	if s == nil {
		return nil
	}
	var sb strings.Builder
	sb.WriteString("t_ms")
	for _, c := range s.cols {
		sb.WriteByte(',')
		sb.WriteString(c.name)
	}
	sb.WriteByte('\n')
	for i, at := range s.times {
		fmt.Fprintf(&sb, "%.6f", at.Milliseconds())
		for _, v := range s.rows[i] {
			sb.WriteByte(',')
			sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		sb.WriteByte('\n')
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
