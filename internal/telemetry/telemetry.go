// Package telemetry is the simulation-time observability layer shared by
// every component of the CoolPIM platform. It provides:
//
//   - a metrics Registry of counters, gauges and histograms with a
//     Prometheus-text exporter, the queryable end-of-run state of a run;
//   - a Tracer emitting a structured stream of typed events — thermal
//     warning raise/clear, DRAM derating phase transitions, token-pool
//     resizes, PIM offload accept/reject, link FLIT backpressure — with
//     simulated timestamps and a JSONL exporter, the Fig. 8/14-style view
//     of the closed control loop;
//   - a Series sampler driven by sim.Engine.Every that records aligned
//     per-component time series and exports them as CSV;
//   - an EngineProfile implementing sim.Observer, aggregating event
//     counts and wall-clock handler time per component label.
//
// The whole layer is opt-in and nil-safe: components hold a *Tracer that
// may be nil, and every emit method on a nil tracer is a single
// predictable branch with no allocation, so the simulation hot path is
// unaffected when telemetry is disabled (see the package benchmarks).
// All recorded data is a pure function of the simulation, so two runs
// with identical seeds produce byte-identical trace, series and metrics
// exports — the determinism regression test in internal/system relies
// on this. Wall-clock profiling data is kept out of those exporters for
// the same reason (it only appears in the human-readable summary).
package telemetry

import (
	"fmt"
	"io"
	"sort"

	"coolpim/internal/units"
)

// Telemetry bundles the observability subsystem of one simulation run:
// one registry, one trace stream, one time-series sampler and one engine
// profile. A nil *Telemetry means "disabled" throughout the codebase.
// A Telemetry must not be shared between concurrent runs.
type Telemetry struct {
	Registry *Registry
	Tracer   *Tracer
	Series   *Series
	Spans    *SpanTracer
	profile  *EngineProfile

	// Flight, if non-nil, is the crash-evidence ring buffer: the tracer
	// and span tracer feed it copies of their records and the system
	// wiring adds thermal snapshots, so a panicking or wedged run can be
	// dumped post-mortem (see FlightRecorder). Opt-in; set it before the
	// run is wired.
	Flight *FlightRecorder

	// Sink, if non-nil, receives periodically published snapshots for
	// live inspection (see Snapshot); PublishEvery sets the cadence
	// (0 → the system config's sample interval). RunID labels the
	// snapshots.
	Sink         SnapshotSink
	PublishEvery units.Time
	RunID        string
}

// New returns an enabled, empty telemetry hub.
func New() *Telemetry {
	t := &Telemetry{
		Registry: NewRegistry(),
		Tracer:   NewTracer(),
		Series:   NewSeries(),
		Spans:    NewSpanTracer(),
		profile:  NewEngineProfile(),
	}
	t.profile.spans = t.Spans
	return t
}

// Enabled reports whether the hub is active (non-nil).
func (t *Telemetry) Enabled() bool { return t != nil }

// Profile returns the engine profile observer, for sim.Engine.SetObserver.
// A disabled (nil) hub has no profile.
func (t *Telemetry) Profile() *EngineProfile {
	if t == nil {
		return nil
	}
	return t.profile
}

// EngineProfile aggregates engine-level profiling per component label:
// how many events each component executed and how much wall-clock time
// its handlers took. It implements sim.Observer structurally, and —
// when a span tracer is attached — sim.RunObserver as well, opening the
// "engine.run" root span around each Run/RunUntil so every component
// span of the run hangs off one root.
type EngineProfile struct {
	byLabel map[string]*labelStats
	spans   *SpanTracer
	runName SpanName
	runSpan Span
}

type labelStats struct {
	events uint64
	wallNs int64
}

// NewEngineProfile returns an empty profile.
func NewEngineProfile() *EngineProfile {
	return &EngineProfile{byLabel: make(map[string]*labelStats)}
}

// EventExecuted records one executed engine event (sim.Observer).
func (p *EngineProfile) EventExecuted(label string, _ units.Time, wallNs int64) {
	if p == nil {
		return
	}
	if label == "" {
		label = "(unlabeled)"
	}
	s := p.byLabel[label]
	if s == nil {
		s = &labelStats{}
		p.byLabel[label] = s
	}
	s.events++
	s.wallNs += wallNs
}

// RunStarted opens the "engine.run" root span (sim.RunObserver).
func (p *EngineProfile) RunStarted(at units.Time) {
	if p == nil || p.spans == nil {
		return
	}
	if p.runName == 0 {
		p.runName = p.spans.Name("engine.run")
	}
	p.runSpan = p.spans.StartRoot(at, p.runName)
}

// RunEnded closes the "engine.run" root span (sim.RunObserver).
func (p *EngineProfile) RunEnded(at units.Time) {
	if p == nil || p.spans == nil {
		return
	}
	p.runSpan.End(at)
	p.runSpan = Span{}
}

// LabelStat is one row of the engine profile.
type LabelStat struct {
	Label  string
	Events uint64
	WallNs int64
}

// Stats returns the profile rows sorted by descending wall time.
func (p *EngineProfile) Stats() []LabelStat {
	if p == nil {
		return nil
	}
	out := make([]LabelStat, 0, len(p.byLabel))
	for l, s := range p.byLabel {
		out = append(out, LabelStat{Label: l, Events: s.events, WallNs: s.wallNs})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].WallNs != out[j].WallNs {
			return out[i].WallNs > out[j].WallNs
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// WriteSummary prints the human-readable end-of-run summary: trace event
// counts by kind, the engine profile, and every registered metric.
func (t *Telemetry) WriteSummary(w io.Writer) error {
	if t == nil {
		return nil
	}
	if counts := t.Tracer.CountsByKind(); len(counts) > 0 {
		fmt.Fprintf(w, "trace events (%d total):\n", t.Tracer.Len())
		for _, kc := range counts {
			line := fmt.Sprintf("  %-28s %8d", kc.Kind, kc.Count)
			if kc.Suppressed > 0 {
				line += fmt.Sprintf("  (+%d rate-limited)", kc.Suppressed)
			}
			fmt.Fprintln(w, line)
		}
	}
	if stats := t.profile.Stats(); len(stats) > 0 {
		fmt.Fprintf(w, "engine profile (events scheduled under each component label):\n")
		fmt.Fprintf(w, "  %-14s %12s %12s\n", "component", "events", "wall")
		for _, s := range stats {
			fmt.Fprintf(w, "  %-14s %12d %11.1fms\n", s.Label, s.Events, float64(s.WallNs)/1e6)
		}
	}
	if rows := t.Registry.Snapshot(); len(rows) > 0 {
		fmt.Fprintln(w, "metrics:")
		for _, r := range rows {
			fmt.Fprintf(w, "  %-36s %s\n", r.Name, r.Value)
		}
	}
	return nil
}
