package diagserver_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"coolpim/internal/core"
	"coolpim/internal/graph"
	"coolpim/internal/system"
	"coolpim/internal/telemetry"
	"coolpim/internal/telemetry/diagserver"
)

var diagGraph = graph.GenRMAT(11, 8, graph.LDBCLikeParams(), 7)

// runExports runs one small simulation and returns its deterministic
// telemetry exports (events, spans, metrics) as bytes.
func runExports(t *testing.T, sink telemetry.SnapshotSink) (trace, spans, metrics []byte) {
	t.Helper()
	cfg := system.DefaultConfig()
	cfg.GPU.L2.SizeBytes = 8 << 10
	cfg.GPU.L1.SizeBytes = 4 << 10
	tel := telemetry.New()
	tel.Flight = telemetry.NewFlightRecorder(0)
	tel.Spans.SetWallClock(func() int64 { return time.Now().UnixNano() })
	tel.Sink = sink
	cfg.Telemetry = tel
	res, err := system.Run("dc", core.CoolPIMHW, cfg, diagGraph)
	if err != nil {
		t.Fatal(err)
	}
	if res.VerifyErr != nil {
		t.Fatal(res.VerifyErr)
	}
	var tr, sp, me bytes.Buffer
	if err := tel.Tracer.WriteJSONL(&tr); err != nil {
		t.Fatal(err)
	}
	if err := tel.Spans.WriteJSONL(&sp); err != nil {
		t.Fatal(err)
	}
	if err := tel.Registry.WritePrometheus(&me); err != nil {
		t.Fatal(err)
	}
	return tr.Bytes(), sp.Bytes(), me.Bytes()
}

// TestServerDoesNotPerturbSimulation is the acceptance gate for the
// diag server: running the same seeded simulation with the HTTP server
// attached — and clients hammering it concurrently — must produce
// byte-identical trace, span and metrics exports to a serverless run.
// Run with -race to also exercise the snapshot publication path.
func TestServerDoesNotPerturbSimulation(t *testing.T) {
	baseTrace, baseSpans, baseMetrics := runExports(t, nil)

	srv, err := diagserver.New("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, path := range []string{"/metrics", "/spans", "/healthz"} {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(url)
				if err != nil {
					return // server closed
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(fmt.Sprintf("http://%s%s", srv.Addr(), path))
	}

	gotTrace, gotSpans, gotMetrics := runExports(t, srv)
	close(stop)
	wg.Wait()

	if !bytes.Equal(baseTrace, gotTrace) {
		t.Error("event trace diverged with diag server attached")
	}
	if !bytes.Equal(baseSpans, gotSpans) {
		t.Error("span export diverged with diag server attached")
	}
	if !bytes.Equal(baseMetrics, gotMetrics) {
		t.Error("metrics export diverged with diag server attached")
	}
}

func TestEndpoints(t *testing.T) {
	srv, err := diagserver.New("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// Before the first publish: healthz is up, data endpoints are 503.
	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("/healthz = %d %s", code, body)
	}
	if code, _ := get("/metrics"); code != http.StatusServiceUnavailable {
		t.Fatalf("/metrics before publish = %d, want 503", code)
	}
	if code, _ := get("/spans"); code != http.StatusServiceUnavailable {
		t.Fatalf("/spans before publish = %d, want 503", code)
	}

	// Publish a snapshot and watch the endpoints light up.
	tel := telemetry.New()
	tel.RunID = "test-run"
	tel.Registry.Counter("pings_total", "test counter").Add(3)
	sp := tel.Spans.StartRoot(0, tel.Spans.Name("engine.run"))
	sp.End(1000)
	tel.Sink = srv
	tel.Publish(5000)

	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "pings_total 3") {
		t.Fatalf("/metrics = %d %s", code, body)
	}
	code, body := get("/spans")
	if code != http.StatusOK {
		t.Fatalf("/spans = %d %s", code, body)
	}
	var rows []map[string]any
	if err := json.Unmarshal([]byte(body), &rows); err != nil || len(rows) != 1 {
		t.Fatalf("/spans body invalid (%v): %s", err, body)
	}
	if rows[0]["name"] != "engine.run" {
		t.Fatalf("/spans row = %v", rows[0])
	}
	if _, body := get("/healthz"); !strings.Contains(body, `"run_id":"test-run"`) {
		t.Fatalf("/healthz missing run id: %s", body)
	}

	// Run table.
	srv.Runs().Started("dc/coolpim-hw", 0)
	srv.Runs().Finished("dc/coolpim-hw", nil, false, 5*time.Millisecond)
	srv.Runs().Started("dc/baseline", 0)
	srv.Runs().Finished("dc/baseline", errors.New("boom"), false, time.Millisecond)
	if code, body := get("/runs"); code != http.StatusOK ||
		!strings.Contains(body, `"state":"ok"`) || !strings.Contains(body, `"state":"failed"`) {
		t.Fatalf("/runs = %d %s", code, body)
	}

	// pprof index responds (the profiling endpoints are wired).
	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ = %d, want 200", code)
	}
}
