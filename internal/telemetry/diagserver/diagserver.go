// Package diagserver is the opt-in live diagnostics HTTP server behind
// the -diag-addr flag of coolpim-sim, coolpim-sweep and cmd/figures.
//
// It never touches live simulation state: the simulation goroutine
// periodically publishes immutable telemetry.Snapshot values through an
// atomic pointer (the snapshot-publication rule, DESIGN.md §11), and
// the HTTP handlers only ever read whole published snapshots. The
// campaign /runs table is the one mutable structure; it is owned by the
// runner's single collector goroutine and read under its own mutex.
// This package is harness code: like internal/runner it is a sanctioned
// home for goroutines and wall-clock reads under the determinism
// analyzer, and nothing here feeds back into simulated state.
//
// Endpoints:
//
//	/metrics      Prometheus text rendering of the last snapshot
//	/healthz      liveness + uptime + run progress (JSON)
//	/spans        recent spans of the last snapshot (JSON array)
//	/runs         in-flight campaign state (JSON array)
//	/debug/pprof  net/http/pprof profiling
package diagserver

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"coolpim/internal/telemetry"
)

// Server is one diagnostics HTTP server. Create with New, attach as
// the telemetry hub's SnapshotSink, Close when done.
type Server struct {
	ln      net.Listener
	srv     *http.Server
	snap    atomic.Pointer[telemetry.Snapshot]
	runs    *RunTable
	started time.Time
}

// New listens on addr (e.g. "127.0.0.1:0" for an ephemeral port) and
// starts serving in the background.
func New(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("diagserver: listen %s: %w", addr, err)
	}
	s := &Server{
		ln:      ln,
		runs:    NewRunTable(),
		started: time.Now(), //coolpim:allow determinism harness uptime reporting; never feeds simulated state
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/spans", s.handleSpans)
	mux.HandleFunc("/runs", s.handleRuns)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	//coolpim:allow determinism harness HTTP server goroutine; handlers only read atomically published snapshots
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address (host:port), useful with ":0".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// PublishSnapshot implements telemetry.SnapshotSink: it atomically
// swaps in the new snapshot for subsequent reads.
func (s *Server) PublishSnapshot(sn *telemetry.Snapshot) {
	if sn == nil {
		return
	}
	s.snap.Store(sn)
}

// Runs returns the campaign run table for harness wiring.
func (s *Server) Runs() *RunTable { return s.runs }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	sn := s.snap.Load()
	if sn == nil {
		http.Error(w, "no snapshot published yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(sn.Metrics)
}

func (s *Server) handleSpans(w http.ResponseWriter, _ *http.Request) {
	sn := s.snap.Load()
	if sn == nil {
		http.Error(w, "no snapshot published yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(sn.Spans)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	type health struct {
		Status      string  `json:"status"`
		UptimeS     float64 `json:"uptime_s"`
		RunID       string  `json:"run_id,omitempty"`
		SimTimeMs   float64 `json:"sim_time_ms"`
		TraceEvents int     `json:"trace_events"`
		Spans       int     `json:"spans"`
		Snapshot    bool    `json:"snapshot_published"`
	}
	h := health{
		Status:  "ok",
		UptimeS: time.Since(s.started).Seconds(), //coolpim:allow determinism harness uptime reporting; never feeds simulated state
	}
	if sn := s.snap.Load(); sn != nil {
		h.RunID = sn.RunID
		h.SimTimeMs = sn.SimTime.Milliseconds()
		h.TraceEvents = sn.TraceEvents
		h.Spans = sn.SpanCount
		h.Snapshot = true
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h)
}

func (s *Server) handleRuns(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(s.runs.JSON())
}

// RunTable tracks in-flight campaign state for /runs. It is safe for
// concurrent use: the runner's OnStart hook fires from worker
// goroutines and OnRunDone from the collector goroutine.
type RunTable struct {
	mu    sync.Mutex
	order []string           //coolpim:guard mu
	byKey map[string]*runRow //coolpim:guard mu
}

type runRow struct {
	Key        string  `json:"key"`
	State      string  `json:"state"` // running | ok | failed | ledger
	Attempts   int     `json:"attempts"`
	Error      string  `json:"error,omitempty"`
	FromLedger bool    `json:"from_ledger,omitempty"`
	WallS      float64 `json:"wall_s,omitempty"`
}

// NewRunTable returns an empty table.
func NewRunTable() *RunTable {
	return &RunTable{byKey: make(map[string]*runRow)}
}

// row finds or inserts the row for key.
//
//coolpim:locked mu
func (rt *RunTable) row(key string) *runRow {
	r, ok := rt.byKey[key]
	if !ok {
		r = &runRow{Key: key}
		rt.byKey[key] = r
		rt.order = append(rt.order, key)
	}
	return r
}

// Started records an attempt beginning (wire to runner Config.OnStart).
func (rt *RunTable) Started(key string, attempt int) {
	rt.mu.Lock()
	r := rt.row(key)
	r.State = "running"
	r.Attempts = attempt + 1
	rt.mu.Unlock()
}

// Finished records a final outcome (wire to the matrix OnRunDone hook).
func (rt *RunTable) Finished(key string, err error, fromLedger bool, wall time.Duration) {
	rt.mu.Lock()
	r := rt.row(key)
	switch {
	case err != nil:
		r.State = "failed"
		r.Error = err.Error()
	case fromLedger:
		r.State = "ledger"
	default:
		r.State = "ok"
	}
	r.FromLedger = fromLedger
	r.WallS = wall.Seconds()
	rt.mu.Unlock()
}

// JSON renders the table in first-seen order.
func (rt *RunTable) JSON() []byte {
	rt.mu.Lock()
	rows := make([]runRow, 0, len(rt.order))
	for _, k := range rt.order {
		rows = append(rows, *rt.byKey[k])
	}
	rt.mu.Unlock()
	b, err := json.Marshal(rows)
	if err != nil {
		return []byte("[]")
	}
	return b
}
