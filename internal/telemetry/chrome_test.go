package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestChromeTraceShape(t *testing.T) {
	spans := []SpanExport{
		{ID: 1, Parent: 0, Name: "engine.run", Start: 0, End: 5_000_000},
		{ID: 2, Parent: 1, Name: "thermal.tick", Start: 1_000_000, End: 1_002_000},
		{ID: 3, Parent: 1, Name: "gpu.kernel", Start: 2_000_000, End: spanOpen}, // open: skipped
	}
	events := []Event{
		{At: 1_500_000, Kind: EvWarnRaise, Data: `"temp_c":85.10`},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans, events); err != nil {
		t.Fatal(err)
	}

	var entries []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &entries); err != nil {
		t.Fatalf("output is not a trace_event JSON array: %v\n%s", err, buf.String())
	}
	// 2 closed spans + 1 instant event; the open span is skipped.
	if len(entries) != 3 {
		t.Fatalf("got %d entries, want 3: %s", len(entries), buf.String())
	}
	for i, e := range entries {
		for _, k := range []string{"name", "ph"} {
			if _, ok := e[k].(string); !ok {
				t.Fatalf("entry %d missing string %q: %v", i, k, e)
			}
		}
		for _, k := range []string{"ts", "pid", "tid"} {
			if _, ok := e[k].(float64); !ok {
				t.Fatalf("entry %d missing numeric %q: %v", i, k, e)
			}
		}
	}
	// Span durations are microseconds (ps / 1e6).
	if entries[0]["ph"] != "X" || entries[0]["dur"].(float64) != 5.0 {
		t.Fatalf("engine.run complete event wrong: %v", entries[0])
	}
	if entries[2]["ph"] != "i" {
		t.Fatalf("event should be an instant: %v", entries[2])
	}
	// Same name family ("thermal.*") shares a tid; different family gets
	// its own lane.
	if entries[1]["tid"] == entries[0]["tid"] {
		t.Fatalf("thermal.tick should not share engine.run's tid: %v", entries)
	}
	args := entries[2]["args"].(map[string]any)
	if args["temp_c"].(float64) != 85.10 {
		t.Fatalf("instant event lost its payload: %v", entries[2])
	}
}

func TestChromeTraceDeterministic(t *testing.T) {
	spans := []SpanExport{
		{ID: 1, Name: "a.x", Start: 0, End: 10},
		{ID: 2, Name: "b.y", Start: 5, End: 15},
	}
	var one, two bytes.Buffer
	if err := WriteChromeTrace(&one, spans, nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&two, spans, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), two.Bytes()) {
		t.Fatal("chrome trace output is not deterministic")
	}
}
