package telemetry

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"coolpim/internal/sim"
	"coolpim/internal/units"
)

func TestExponentialBounds(t *testing.T) {
	got := ExponentialBounds(0.5, 2, 4)
	want := []float64{0.5, 1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("bounds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", got, want)
		}
	}
	for _, bad := range []func(){
		func() { ExponentialBounds(0, 2, 3) },
		func() { ExponentialBounds(1, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid exponential bounds accepted")
				}
			}()
			bad()
		}()
	}
}

func TestHistogramPercentiles(t *testing.T) {
	reg := NewRegistry()
	// Buckets 10,20,...,100; observe 1..100 uniformly.
	h := reg.Histogram("h", "test", LinearBounds(10, 10, 10))
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if h.Sum() != 5050 {
		t.Fatalf("sum = %g, want 5050", h.Sum())
	}
	for _, tc := range []struct {
		q, want float64
	}{
		{0.5, 50}, {0.9, 90}, {0.1, 10}, {1.0, 100},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
	// Values beyond the last finite bound clamp to it.
	h2 := reg.Histogram("h2", "test", []float64{1, 2})
	h2.Observe(50)
	if got := h2.Quantile(0.99); got != 2 {
		t.Errorf("overflow quantile = %g, want 2 (last finite bound)", got)
	}
	// Empty histogram reports NaN.
	h3 := reg.Histogram("h3", "test", []float64{1})
	if got := h3.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty quantile = %g, want NaN", got)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing bounds did not panic")
		}
	}()
	NewRegistry().Histogram("bad", "", []float64{2, 1})
}

func TestRegistryDuplicateNamePanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dup", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate metric name did not panic")
		}
	}()
	reg.GaugeFunc("dup", "", func() float64 { return 0 })
}

func TestCounterNegativeAddPanics(t *testing.T) {
	c := NewRegistry().Counter("c", "")
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("runs_total", "total runs")
	c.Inc()
	c.Inc()
	reg.GaugeFunc("temp_celsius", "current temp", func() float64 { return 86.5 })
	h := reg.Histogram("lat_ns", "latency", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE runs_total counter\nruns_total 2\n",
		"# TYPE temp_celsius gauge\ntemp_celsius 86.5\n",
		"# TYPE lat_ns histogram\n",
		`lat_ns_bucket{le="10"} 1`,
		`lat_ns_bucket{le="100"} 2`,
		`lat_ns_bucket{le="+Inf"} 3`,
		"lat_ns_sum 5055\n",
		"lat_ns_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Every non-comment line is "name value" with a parseable value; names
	// sorted ascending.
	var prevName string
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("malformed line %q", line)
		}
		name := fields[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		name = strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if name < prevName {
			t.Errorf("metrics not sorted: %q after %q", name, prevName)
		}
		prevName = name
	}
}

func TestLabeledFuncMetrics(t *testing.T) {
	reg := NewRegistry()
	for cube := 0; cube < 3; cube++ {
		cube := cube
		reg.CounterFuncLabeled("pim_ops_total", "PIM ops served", "cube", strconv.Itoa(cube),
			func() float64 { return float64(100 + cube) })
	}
	reg.GaugeFuncLabeled("peak_celsius", "peak temp", "cube", "0", func() float64 { return 86.5 })
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`pim_ops_total{cube="0"} 100`,
		`pim_ops_total{cube="1"} 101`,
		`pim_ops_total{cube="2"} 102`,
		`peak_celsius{cube="0"} 86.5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// One HELP/TYPE header for the whole labeled family.
	if got := strings.Count(out, "# TYPE pim_ops_total counter"); got != 1 {
		t.Errorf("TYPE header emitted %d times, want 1:\n%s", got, out)
	}

	// Duplicate series and cross-type reuse of a base name must panic.
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("duplicate labeled series", func() {
		reg.CounterFuncLabeled("pim_ops_total", "", "cube", "1", func() float64 { return 0 })
	})
	mustPanic("type mismatch on base name", func() {
		reg.GaugeFuncLabeled("pim_ops_total", "", "cube", "9", func() float64 { return 0 })
	})
	mustPanic("invalid label name", func() {
		reg.CounterFuncLabeled("ok_total", "", "bad label", "x", func() float64 { return 0 })
	})
}

func TestTracerKindsAndJSONL(t *testing.T) {
	tr := NewTracer()
	tr.PoolInit(0, "sw-ptp", 64)
	tr.ThermalWarning(10*units.Microsecond, true, 86.2)
	tr.PhaseTransition(10*units.Microsecond, "Normal", "Extended", 86.2)
	tr.PoolResize(12*units.Microsecond, "sw-ptp", 64, 58, "warning")
	tr.OffloadBlock(13*units.Microsecond, false, 3, 41)
	tr.LinkBackpressure(14*units.Microsecond, 2, 120*units.Nanosecond)
	tr.ThermalWarning(20*units.Microsecond, false, 84.9)
	tr.Shutdown(30*units.Microsecond, 105.5)

	if tr.Len() != 8 {
		t.Fatalf("Len = %d, want 8", tr.Len())
	}
	var sb strings.Builder
	if err := tr.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 8 {
		t.Fatalf("got %d JSONL lines, want 8", len(lines))
	}
	for _, want := range []string{
		`{"t_ps":0,"t_ms":0.000000,"kind":"pool.init","mechanism":"sw-ptp","size":64}`,
		`{"t_ps":10000000,"t_ms":0.010000,"kind":"thermal.warning.raise","temp_c":86.20}`,
		`"kind":"thermal.phase","from":"Normal","to":"Extended"`,
		`"kind":"pool.resize","mechanism":"sw-ptp","from":64,"to":58,"reason":"warning"`,
		`"kind":"offload.reject","sm":3,"block":41`,
		`"kind":"link.backpressure","link":2,"wait_ns":120.0`,
		`"kind":"thermal.warning.clear"`,
		`"kind":"thermal.shutdown","temp_c":105.50`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("JSONL missing %q:\n%s", want, sb.String())
		}
	}
	counts := tr.CountsByKind()
	if len(counts) != 8 {
		t.Errorf("CountsByKind rows = %d, want 8 distinct kinds", len(counts))
	}
}

func TestTracerRateLimit(t *testing.T) {
	tr := NewTracer()
	tr.SetMinGap(EvBackpressure, units.Microsecond)
	for i := 0; i < 10; i++ {
		tr.LinkBackpressure(units.Time(i)*100*units.Nanosecond, 0, units.Nanosecond)
	}
	// Events at 0..900ns: only the first survives a 1us gap.
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after rate limiting", tr.Len())
	}
	tr.LinkBackpressure(2*units.Microsecond, 0, units.Nanosecond)
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2 after the gap elapses", tr.Len())
	}
	counts := tr.CountsByKind()
	if len(counts) != 1 || counts[0].Suppressed != 9 {
		t.Fatalf("suppressed = %+v, want 9", counts)
	}
	// Other kinds are unaffected.
	tr.ThermalWarning(0, true, 86)
	tr.ThermalWarning(1, false, 86)
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (no gap on warnings)", tr.Len())
	}
}

func TestTracerCapDropsExcess(t *testing.T) {
	tr := NewTracer()
	tr.maxEvents = 3
	for i := 0; i < 5; i++ {
		tr.OffloadBlock(units.Time(i), true, 0, i)
	}
	if tr.Len() != 3 || tr.Dropped() != 2 {
		t.Fatalf("len=%d dropped=%d, want 3/2", tr.Len(), tr.Dropped())
	}
}

// TestNilTracerZeroAlloc pins the disabled-telemetry contract: every emit
// method on a nil tracer (and Observe on a nil histogram) must not
// allocate, so components can call them unguarded on the hot path.
func TestNilTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	var h *Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		tr.ThermalWarning(0, true, 86)
		tr.PhaseTransition(0, "a", "b", 86)
		tr.PoolResize(0, "sw-ptp", 4, 3, "warning")
		tr.OffloadBlock(0, true, 1, 2)
		tr.LinkBackpressure(0, 0, 1)
		tr.Shutdown(0, 106)
		tr.Emit(0, EvPoolInit, "")
		h.Observe(1.5)
	})
	if allocs != 0 {
		t.Fatalf("nil-tracer emits allocated %.1f times per run, want 0", allocs)
	}
}

func TestSeriesCadence(t *testing.T) {
	eng := sim.New()
	s := NewSeries()
	var ticks int
	s.AddColumn("x", func(now units.Time) float64 {
		ticks++
		return now.Nanoseconds()
	})
	stopAt := 10 * units.Microsecond
	s.Start(eng, units.Microsecond, func() bool { return eng.Now() >= stopAt })
	eng.RunUntil(100 * units.Microsecond)
	// Samples at 1us..10us inclusive: stop is evaluated after recording,
	// so the 10us sample still lands.
	if s.Len() != 10 {
		t.Fatalf("Len = %d, want 10 samples", s.Len())
	}
	if ticks != 10 {
		t.Fatalf("column evaluated %d times, want 10", ticks)
	}
	for i := 0; i < s.Len(); i++ {
		want := float64((i + 1) * 1000) // period in ns
		if got, ok := s.Value(i, "x"); !ok || got != want {
			t.Errorf("sample %d = %g (ok=%v), want %g", i, got, ok, want)
		}
	}
}

func TestSeriesCSV(t *testing.T) {
	s := NewSeries()
	s.AddColumn("a", func(units.Time) float64 { return 1.5 })
	s.AddColumn("b", func(units.Time) float64 { return -2 })
	s.Record(units.Millisecond)
	var sb strings.Builder
	if err := s.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "t_ms,a,b\n1.000000,1.5,-2\n"
	if sb.String() != want {
		t.Fatalf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestSeriesAddColumnAfterRecordPanics(t *testing.T) {
	s := NewSeries()
	s.AddColumn("a", func(units.Time) float64 { return 0 })
	s.Record(0)
	defer func() {
		if recover() == nil {
			t.Fatal("AddColumn after Record did not panic")
		}
	}()
	s.AddColumn("b", func(units.Time) float64 { return 0 })
}

func TestEngineProfileAggregates(t *testing.T) {
	p := NewEngineProfile()
	p.EventExecuted("hmc", 0, 100)
	p.EventExecuted("hmc", 1, 50)
	p.EventExecuted("gpu", 2, 30)
	p.EventExecuted("", 3, 10)
	stats := p.Stats()
	if len(stats) != 3 {
		t.Fatalf("rows = %d, want 3", len(stats))
	}
	if stats[0].Label != "hmc" || stats[0].Events != 2 || stats[0].WallNs != 150 {
		t.Errorf("top row = %+v, want hmc/2/150", stats[0])
	}
	if stats[2].Label != "(unlabeled)" {
		t.Errorf("empty label not mapped: %+v", stats[2])
	}
}

func TestWriteSummarySmoke(t *testing.T) {
	tel := New()
	tel.Tracer.ThermalWarning(0, true, 86)
	tel.Registry.Counter("x_total", "").Inc()
	tel.Profile().EventExecuted("hmc", 0, 42)
	var sb strings.Builder
	if err := tel.WriteSummary(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"thermal.warning.raise", "hmc", "x_total"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, sb.String())
		}
	}
	// Disabled hub: summary is a silent no-op.
	var nilTel *Telemetry
	if err := nilTel.WriteSummary(&sb); err != nil {
		t.Fatal(err)
	}
	if nilTel.Enabled() {
		t.Error("nil hub reports enabled")
	}
}
