package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Registry holds a run's metric instruments. Instruments are registered
// once at wiring time and read at export; the registry is not safe for
// concurrent use (each simulation run is single-threaded and owns its
// own registry).
type Registry struct {
	counters []*Counter
	funcs    []*funcMetric
	hists    []*Histogram
	names    map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

func (r *Registry) claim(name string) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	if r.names[name] {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", name))
	}
	r.names[name] = true
}

// validMetricName checks the Prometheus metric-name grammar.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Counter is a monotonically increasing metric owned by the telemetry
// layer itself (for externally maintained totals, use CounterFunc).
type Counter struct {
	name, help string
	v          float64
}

// Counter registers and returns a new incremental counter.
func (r *Registry) Counter(name, help string) *Counter {
	r.claim(name)
	c := &Counter{name: name, help: help}
	r.counters = append(r.counters, c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds d (which must be non-negative).
func (c *Counter) Add(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("telemetry: counter %s decreased by %g", c.name, d))
	}
	c.v += d
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v }

// funcMetric is a counter or gauge whose value is read from a callback
// at export time — the natural fit for the simulator's existing
// cumulative Stats structs. series is the full exposition series name
// (base name plus an optional one-label set); name stays the base
// metric name, under which HELP/TYPE headers are grouped.
type funcMetric struct {
	name, help, typ string
	series          string
	fn              func() float64
}

// CounterFunc registers a callback-backed counter (a cumulative total
// maintained elsewhere, e.g. an hmc.Counters field).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.claim(name)
	r.funcs = append(r.funcs, &funcMetric{name: name, help: help, typ: "counter", series: name, fn: fn})
}

// GaugeFunc registers a callback-backed gauge (an instantaneous value,
// e.g. the current peak DRAM temperature or token-pool size).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.claim(name)
	r.funcs = append(r.funcs, &funcMetric{name: name, help: help, typ: "gauge", series: name, fn: fn})
}

// labelEscaper applies Prometheus label-value escaping.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// claimSeries validates and claims one labeled series of a base metric,
// enforcing that every series of the base name shares one type.
func (r *Registry) claimSeries(name, key, val, typ string) string {
	if !validMetricName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	if !validMetricName(key) || strings.Contains(key, ":") {
		panic(fmt.Sprintf("telemetry: invalid label name %q", key))
	}
	for _, f := range r.funcs {
		if f.name == name && f.typ != typ {
			panic(fmt.Sprintf("telemetry: metric %q registered as both %s and %s", name, f.typ, typ))
		}
	}
	series := fmt.Sprintf("%s{%s=%q}", name, key, labelEscaper.Replace(val))
	if r.names[series] {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", series))
	}
	r.names[series] = true
	return series
}

// CounterFuncLabeled registers one labeled series of a callback-backed
// counter, e.g. coolpim_pim_ops_total{cube="2"}. All series sharing the
// base name are emitted under one HELP/TYPE header; the first
// registration's help string wins.
func (r *Registry) CounterFuncLabeled(name, help, key, val string, fn func() float64) {
	series := r.claimSeries(name, key, val, "counter")
	r.funcs = append(r.funcs, &funcMetric{name: name, help: help, typ: "counter", series: series, fn: fn})
}

// GaugeFuncLabeled registers one labeled series of a callback-backed
// gauge, e.g. coolpim_peak_dram_celsius{cube="2"}.
func (r *Registry) GaugeFuncLabeled(name, help, key, val string, fn func() float64) {
	series := r.claimSeries(name, key, val, "gauge")
	r.funcs = append(r.funcs, &funcMetric{name: name, help: help, typ: "gauge", series: series, fn: fn})
}

// Histogram accumulates observations into fixed buckets, Prometheus
// style: counts[i] holds observations <= bounds[i], with an implicit
// +Inf bucket at the end.
type Histogram struct {
	name, help string
	bounds     []float64
	counts     []uint64 // len(bounds)+1; last is the +Inf bucket
	sum        float64
	n          uint64
}

// Histogram registers a histogram with the given upper bucket bounds
// (which must be strictly increasing and non-empty).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.claim(name)
	if len(bounds) == 0 {
		panic(fmt.Sprintf("telemetry: histogram %s without buckets", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %s bounds not increasing", name))
		}
	}
	h := &Histogram{
		name:   name,
		help:   help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
	r.hists = append(r.hists, h)
	return h
}

// LinearBounds returns n upper bounds start, start+step, ...
func LinearBounds(start, step float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*step
	}
	return out
}

// ExponentialBounds returns n upper bounds start, start*factor, ... —
// the natural bucket layout for wall-clock durations, whose interesting
// range spans orders of magnitude. factor must be > 1.
func ExponentialBounds(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 {
		panic(fmt.Sprintf("telemetry: invalid exponential bounds (start=%g, factor=%g)", start, factor))
	}
	out := make([]float64, n)
	b := start
	for i := range out {
		out[i] = b
		b *= factor
	}
	return out
}

// Observe records one value. Nil-safe so call sites can stay unguarded
// when telemetry is disabled.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation within the bucket containing the target rank, the same
// estimate Prometheus's histogram_quantile computes. The first bucket
// interpolates from zero; observations beyond the last finite bound
// report that bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.n == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.n)
	cum := uint64(0)
	for i, c := range h.counts {
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		if i == len(h.bounds) {
			// +Inf bucket: clamp to the largest finite bound.
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		if c == 0 {
			return lo
		}
		frac := (rank - float64(cum)) / float64(c)
		return lo + (h.bounds[i]-lo)*frac
	}
	return h.bounds[len(h.bounds)-1]
}

// formatValue renders a metric value the way Prometheus text format does.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus dumps every instrument in Prometheus text exposition
// format, sorted by metric name for deterministic output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	type entry struct {
		name string
		emit func(io.Writer)
	}
	var entries []entry
	for _, c := range r.counters {
		c := c
		entries = append(entries, entry{c.name, func(w io.Writer) {
			writeHeader(w, c.name, c.help, "counter")
			fmt.Fprintf(w, "%s %s\n", c.name, formatValue(c.v))
		}})
	}
	// Func metrics group by base name: one HELP/TYPE header per metric,
	// then every series (plain or labeled) in sorted series order.
	groups := make(map[string][]*funcMetric)
	var groupNames []string
	for _, f := range r.funcs {
		if _, seen := groups[f.name]; !seen {
			groupNames = append(groupNames, f.name)
		}
		groups[f.name] = append(groups[f.name], f)
	}
	for _, name := range groupNames {
		name, group := name, groups[name]
		help, typ := group[0].help, group[0].typ // first registration wins
		sort.Slice(group, func(i, j int) bool { return group[i].series < group[j].series })
		entries = append(entries, entry{name, func(w io.Writer) {
			writeHeader(w, name, help, typ)
			for _, f := range group {
				fmt.Fprintf(w, "%s %s\n", f.series, formatValue(f.fn()))
			}
		}})
	}
	for _, h := range r.hists {
		h := h
		entries = append(entries, entry{h.name, func(w io.Writer) {
			writeHeader(w, h.name, h.help, "histogram")
			cum := uint64(0)
			for i, b := range h.bounds {
				cum += h.counts[i]
				fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, formatValue(b), cum)
			}
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, h.n)
			fmt.Fprintf(w, "%s_sum %s\n", h.name, formatValue(h.sum))
			fmt.Fprintf(w, "%s_count %d\n", h.name, h.n)
		}})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	var sb strings.Builder
	for _, e := range entries {
		e.emit(&sb)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// helpEscaper applies the Prometheus text exposition escaping for HELP
// lines: backslash and line feed must be escaped (in that order) so a
// multiline help string stays one well-formed comment line.
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func writeHeader(w io.Writer, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, helpEscaper.Replace(help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

// MetricRow is one (name, rendered value) pair of a registry snapshot.
type MetricRow struct {
	Name  string
	Value string
}

// Snapshot returns the current value of every scalar instrument (and
// histogram count/mean), sorted by name — the data behind the summary
// table.
func (r *Registry) Snapshot() []MetricRow {
	var rows []MetricRow
	for _, c := range r.counters {
		rows = append(rows, MetricRow{c.name, formatValue(c.v)})
	}
	for _, f := range r.funcs {
		rows = append(rows, MetricRow{f.series, formatValue(f.fn())})
	}
	for _, h := range r.hists {
		mean := math.NaN()
		if h.n > 0 {
			mean = h.sum / float64(h.n)
		}
		rows = append(rows, MetricRow{h.name, fmt.Sprintf("count=%d mean=%.3g p50=%.3g p99=%.3g",
			h.n, mean, h.Quantile(0.50), h.Quantile(0.99))})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows
}
