package telemetry

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"

	"coolpim/internal/units"
)

// FlightRecorder keeps a fixed-size ring of the most recent
// observability records — trace events, thermal snapshots and span
// closures — so a crashing or wedged run can ship its own evidence: the
// campaign runner dumps the ring on *RunPanicError / *DeadlineError,
// and coolpim-sim dumps it on SIGQUIT or panic.
//
// A nil *FlightRecorder is the disabled state: every method returns
// immediately without allocating. An enabled recorder is safe for
// concurrent use (the collector goroutine may dump the ring while an
// abandoned deadline-exceeded attempt is still recording into it).
type FlightRecorder struct {
	mu   sync.Mutex
	buf  []flightEntry //coolpim:guard mu
	cap  int           // immutable after NewFlightRecorder
	next int           //coolpim:guard mu (write position once the ring is full)
	seq  uint64        //coolpim:guard mu
}

type flightEntry struct {
	seq  uint64
	at   units.Time
	kind string
	data string
}

// DefaultFlightCapacity is the ring size used by harness wiring.
const DefaultFlightCapacity = 4096

// NewFlightRecorder returns a recorder holding the last capacity
// records (non-positive capacity falls back to DefaultFlightCapacity).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{buf: make([]flightEntry, 0, capacity), cap: capacity}
}

// Record appends one entry; data must be a valid JSON object body
// (comma-separated `"key":value` pairs) or empty. The oldest entry is
// evicted once the ring is full.
//
//coolpim:hotpath nilfast disabled (nil) recorder returns before touching the ring
func (f *FlightRecorder) Record(at units.Time, kind, data string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.seq++
	e := flightEntry{seq: f.seq, at: at, kind: kind, data: data}
	if len(f.buf) < f.cap {
		f.buf = append(f.buf, e)
	} else {
		f.buf[f.next] = e
		f.next = (f.next + 1) % f.cap
	}
	f.mu.Unlock()
}

// Thermal records one thermal-coupling snapshot (the peak DRAM
// temperature after a coupler tick). Arguments are scalars so call
// sites stay allocation-free; the JSON rendering happens here, on the
// enabled path only.
//
//coolpim:hotpath nilfast disabled (nil) recorder skips the JSON rendering entirely
func (f *FlightRecorder) Thermal(at units.Time, temp units.Celsius) {
	if f == nil {
		return
	}
	f.Record(at, "thermal", fmt.Sprintf(`"temp_c":%.2f`, float64(temp)))
}

// Len returns the number of buffered entries.
//
//coolpim:hotpath nilfast disabled-recorder read is allocation-free
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.buf)
}

// Seq returns the sequence number of the most recent record (0 if none).
//
//coolpim:hotpath nilfast disabled-recorder read is allocation-free
func (f *FlightRecorder) Seq() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seq
}

// WriteJSONL dumps the ring oldest-first, one JSON object per line:
//
//	{"seq":17,"t_ps":12000000,"t_ms":0.012000,"kind":"thermal","temp_c":86.20}
//
// seq is the global record sequence number, so a dump of a full ring
// shows how many earlier records were evicted (first seq > 1).
func (f *FlightRecorder) WriteJSONL(w io.Writer) error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	ordered := make([]flightEntry, 0, len(f.buf))
	if len(f.buf) < f.cap {
		ordered = append(ordered, f.buf...)
	} else {
		ordered = append(ordered, f.buf[f.next:]...)
		ordered = append(ordered, f.buf[:f.next]...)
	}
	f.mu.Unlock()
	var sb strings.Builder
	for _, e := range ordered {
		sb.Reset()
		fmt.Fprintf(&sb, `{"seq":%d,"t_ps":%d,"t_ms":%.6f,"kind":%q`,
			e.seq, int64(e.at), e.at.Milliseconds(), e.kind)
		if e.data != "" {
			sb.WriteByte(',')
			sb.WriteString(e.data)
		}
		sb.WriteString("}\n")
		if _, err := io.WriteString(w, sb.String()); err != nil {
			return err
		}
	}
	return nil
}

// DumpFile writes the ring to path (creating or truncating it).
func (f *FlightRecorder) DumpFile(path string) error {
	if f == nil {
		return nil
	}
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.WriteJSONL(file); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}
