package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"coolpim/internal/units"
)

func TestFlightRingWraps(t *testing.T) {
	fr := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		fr.Record(units.Time(i), "ev", fmt.Sprintf(`"i":%d`, i))
	}
	if fr.Len() != 4 {
		t.Fatalf("len = %d, want 4", fr.Len())
	}
	if fr.Seq() != 10 {
		t.Fatalf("seq = %d, want 10", fr.Seq())
	}
	var out bytes.Buffer
	if err := fr.WriteJSONL(&out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("dumped %d lines, want 4:\n%s", len(lines), out.String())
	}
	// Oldest-first, and the global seq (1-based) reveals the 6 evicted
	// entries: the survivors are records 7..10.
	for i, line := range lines {
		var rec struct {
			Seq  uint64 `json:"seq"`
			TPs  int64  `json:"t_ps"`
			Kind string `json:"kind"`
			I    int    `json:"i"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if rec.Seq != uint64(7+i) || rec.I != 6+i || rec.Kind != "ev" {
			t.Fatalf("line %d = %+v, want seq %d / i %d", i, rec, 7+i, 6+i)
		}
	}
}

func TestFlightPartialRingDumpsInOrder(t *testing.T) {
	fr := NewFlightRecorder(16)
	fr.Thermal(1000, 86.5)
	fr.Record(2000, "warning", "")
	var out bytes.Buffer
	if err := fr.WriteJSONL(&out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("dumped %d lines, want 2", len(lines))
	}
	if !strings.Contains(lines[0], `"kind":"thermal"`) || !strings.Contains(lines[0], `"temp_c":86.50`) {
		t.Fatalf("thermal entry malformed: %s", lines[0])
	}
	// Entries without payload still parse as standalone JSON objects.
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatalf("payload-free entry is invalid JSON: %v", err)
	}
}

func TestFlightDumpFile(t *testing.T) {
	fr := NewFlightRecorder(0) // default capacity
	fr.Record(1, "ev", `"x":1`)
	path := filepath.Join(t.TempDir(), "ring.flight.jsonl")
	if err := fr.DumpFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"x":1`) {
		t.Fatalf("dump missing entry: %s", data)
	}
}

func TestNilFlightRecorderZeroAlloc(t *testing.T) {
	var fr *FlightRecorder
	allocs := testing.AllocsPerRun(1000, func() {
		fr.Record(1, "ev", "")
		fr.Thermal(2, 90)
		_ = fr.Len()
		_ = fr.Seq()
	})
	if allocs != 0 {
		t.Fatalf("nil FlightRecorder allocated %.1f per op, want 0", allocs)
	}
}
