// Package coolpim's top-level benchmark harness: one bench per table and
// figure of the paper (regenerating its rows under testing.B and
// reporting the headline quantity as a custom metric), plus
// micro-benchmarks of the substrate components.
//
// The figure benches run on the reduced test profile so `go test
// -bench=.` completes in minutes; `cmd/figures` regenerates the full
// committed numbers (see EXPERIMENTS.md).
package coolpim

import (
	"fmt"
	"testing"

	"coolpim/internal/cache"
	"coolpim/internal/core"
	"coolpim/internal/dram"
	"coolpim/internal/experiments"
	"coolpim/internal/flit"
	"coolpim/internal/graph"
	"coolpim/internal/hmc"
	"coolpim/internal/kernels"
	"coolpim/internal/mem"
	"coolpim/internal/power"
	"coolpim/internal/sim"
	"coolpim/internal/system"
	"coolpim/internal/thermal"
	"coolpim/internal/units"
)

// ---- Tables ----

func BenchmarkTable1FlitAccounting(b *testing.B) {
	total := 0
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.Table1() {
			total += r.ReqFlits + r.RespFlits
		}
	}
	if total == 0 {
		b.Fatal("empty table")
	}
}

func BenchmarkTable2CoolingTypes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Table2()) != 4 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkTable3InstructionMapping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Table3()) != 10 {
			b.Fatal("bad table")
		}
	}
}

// ---- Analytic figures (thermal model sweeps) ----

func BenchmarkFig1PrototypeThermal(b *testing.B) {
	var last units.Celsius
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		last = pts[len(pts)-1].Die
	}
	b.ReportMetric(float64(last), "peakC")
}

func BenchmarkFig2ModelValidation(b *testing.B) {
	var diff float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig2()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			d := float64(r.DieModeled - r.DieEstimated)
			if d < 0 {
				d = -d
			}
			diff = d
		}
	}
	b.ReportMetric(diff, "absErrC")
}

func BenchmarkFig3HeatMap(b *testing.B) {
	var peak units.Celsius
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3()
		if err != nil {
			b.Fatal(err)
		}
		peak = res.LayerPeaks[1]
	}
	b.ReportMetric(float64(peak), "peakDRAMC")
}

func BenchmarkFig4BandwidthSweep(b *testing.B) {
	var pts []experiments.Fig4Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Fig4(9)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(pts[len(pts)-1].PeakDRAM), "highEnd320C")
}

func BenchmarkFig5PIMRateSweep(b *testing.B) {
	var thr units.OpsPerNs
	for i := 0; i < b.N; i++ {
		var err error
		thr, err = experiments.MaxSafePIMRate()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(thr), "safeOpPerNs")
}

// ---- System figures (coupled GPU+HMC runs, reduced profile) ----

// benchProfile is the reduced campaign configuration for benches.
func benchProfile() experiments.Profile { return experiments.TestProfile() }

func runSystem(b *testing.B, workload string, pol core.PolicyKind) *system.Result {
	b.Helper()
	p := benchProfile()
	g := p.Graph()
	b.ResetTimer() // graph generation is setup, not simulation
	var res *system.Result
	for i := 0; i < b.N; i++ {
		w, err := kernels.NewSized(workload, p.Reps)
		if err != nil {
			b.Fatal(err)
		}
		res, err = system.RunWorkload(w, pol, p.Sys, g)
		if err != nil {
			b.Fatal(err)
		}
		if res.VerifyErr != nil {
			b.Fatal(res.VerifyErr)
		}
	}
	return res
}

// BenchmarkFig10Speedup regenerates the Fig. 10 rows: each sub-benchmark
// runs one workload under one configuration and reports its speedup over
// the baseline as a custom metric.
func BenchmarkFig10Speedup(b *testing.B) {
	pols := []core.PolicyKind{core.NaiveOffloading, core.CoolPIMHW, core.IdealThermal}
	for _, wl := range kernels.Names() {
		wl := wl
		var base *system.Result
		b.Run(wl+"/Non-Offloading", func(b *testing.B) {
			base = runSystem(b, wl, core.NonOffloading)
		})
		for _, pol := range pols {
			pol := pol
			b.Run(fmt.Sprintf("%s/%v", wl, pol), func(b *testing.B) {
				res := runSystem(b, wl, pol)
				if base != nil {
					b.ReportMetric(res.Speedup(base), "speedup")
				}
			})
		}
	}
}

// BenchmarkFig11Bandwidth reports normalized bandwidth for the naive
// configuration of each workload.
func BenchmarkFig11Bandwidth(b *testing.B) {
	for _, wl := range []string{"dc", "bfs-twc", "sssp-dwc", "pagerank"} {
		wl := wl
		b.Run(wl, func(b *testing.B) {
			var norm float64
			p := benchProfile()
			g := p.Graph()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				base, err := system.Run(wl, core.NonOffloading, p.Sys, g)
				if err != nil {
					b.Fatal(err)
				}
				res, err := system.Run(wl, core.NaiveOffloading, p.Sys, g)
				if err != nil {
					b.Fatal(err)
				}
				norm = res.NormalizedBW(base)
			}
			b.ReportMetric(norm, "normBW")
		})
	}
}

// BenchmarkFig12PIMRate reports the average offloading rate of the naive
// configuration per workload.
func BenchmarkFig12PIMRate(b *testing.B) {
	for _, wl := range kernels.Names() {
		wl := wl
		b.Run(wl, func(b *testing.B) {
			res := runSystem(b, wl, core.NaiveOffloading)
			b.ReportMetric(float64(res.AvgPIMRate), "opPerNs")
		})
	}
}

// BenchmarkFig13PeakTemp reports the peak DRAM temperature of naive and
// CoolPIM(HW) runs.
func BenchmarkFig13PeakTemp(b *testing.B) {
	for _, wl := range []string{"dc", "bfs-twc", "kcore"} {
		for _, pol := range []core.PolicyKind{core.NaiveOffloading, core.CoolPIMHW} {
			wl, pol := wl, pol
			b.Run(fmt.Sprintf("%s/%v", wl, pol), func(b *testing.B) {
				res := runSystem(b, wl, pol)
				b.ReportMetric(float64(res.PeakDRAM), "peakC")
			})
		}
	}
}

// BenchmarkFig14RateSeries regenerates the closed-loop time series.
func BenchmarkFig14RateSeries(b *testing.B) {
	p := benchProfile()
	p.Graph() // warm the cache so generation stays out of the timed region
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig14Series(p, "sssp-twc")
		if err != nil {
			b.Fatal(err)
		}
		n = len(series[core.NaiveOffloading])
	}
	b.ReportMetric(float64(n), "samples")
}

// ---- Substrate micro-benchmarks ----

func BenchmarkEventEngine(b *testing.B) {
	eng := sim.New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.After(units.Time(i%64), func(units.Time) {})
		if i%1024 == 1023 {
			eng.Run()
		}
	}
	eng.Run()
}

func BenchmarkCubeReadThroughput(b *testing.B) {
	eng := sim.New()
	space := mem.NewSpace(1 << 22)
	cube := hmc.New(eng, space, hmc.DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cube.Submit(eng.Now(), flit.Request{Cmd: flit.CmdRead64, Addr: uint64(i) * 64}, func(flit.Response, units.Time) {})
		if i%4096 == 4095 {
			eng.Run()
		}
	}
	eng.Run()
	b.SetBytes(64)
}

func BenchmarkCubePIMThroughput(b *testing.B) {
	eng := sim.New()
	space := mem.NewSpace(1 << 22)
	cube := hmc.New(eng, space, hmc.DefaultConfig())
	buf := space.Alloc("x", 1<<20, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cube.Submit(eng.Now(), flit.Request{Cmd: flit.CmdPIMSignedAdd, Addr: buf.Addr(i % (1 << 20)), Imm: 1},
			func(flit.Response, units.Time) {})
		if i%4096 == 4095 {
			eng.Run()
		}
	}
	eng.Run()
}

// BenchmarkThermalStep measures one paper-profile thermal tick (10 µs of
// simulated time ≈ 12 Euler substeps over the 289-node HMC 2.0 network)
// on a warm model — the stencil kernel's closed-loop hot path.
func BenchmarkThermalStep(b *testing.B) {
	m := thermal.New(thermal.HMC20Stack(), thermal.CommodityServer)
	m.AddLayerPower(0, 20)
	for l := 1; l <= 8; l++ {
		m.AddLayerPower(l, 1.3)
	}
	m.Step(10 * units.Microsecond) // warm the substep-schedule cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step(10 * units.Microsecond)
	}
}

// BenchmarkSolveSteady measures a full Gauss-Seidel relaxation from
// ambient under the calibration power budget (model construction is
// setup, not solving).
func BenchmarkSolveSteady(b *testing.B) {
	m := thermal.New(thermal.HMC20Stack(), thermal.CommodityServer)
	m.AddLayerPower(0, 20.66)
	for l := 1; l <= 8; l++ {
		m.AddLayerPower(l, 10.47/8)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Reset()
		if m.SolveSteady() < 0 {
			b.Fatal("steady solve did not converge")
		}
	}
}

// BenchmarkFastSolve measures the red-black SOR steady solve under the
// same calibration budget as BenchmarkSolveSteady — the side-by-side pair
// is the steady-tier speedup claim.
func BenchmarkFastSolve(b *testing.B) {
	m := thermal.New(thermal.HMC20Stack(), thermal.CommodityServer)
	m.AddLayerPower(0, 20.66)
	for l := 1; l <= 8; l++ {
		m.AddLayerPower(l, 10.47/8)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Reset()
		if m.FastSolve(0) < 0 {
			b.Fatal("fast steady solve did not converge")
		}
	}
}

// BenchmarkStepFast measures the implicit-Euler transient covering the
// same 10 µs window as BenchmarkThermalStep: one backward substep versus
// ~12 forward ones.
func BenchmarkStepFast(b *testing.B) {
	m := thermal.New(thermal.HMC20Stack(), thermal.CommodityServer)
	m.AddLayerPower(0, 20)
	for l := 1; l <= 8; l++ {
		m.AddLayerPower(l, 1.3)
	}
	m.StepFast(10*units.Microsecond, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.StepFast(10*units.Microsecond, 0)
	}
}

func BenchmarkDRAMBankSchedule(b *testing.B) {
	var bank dram.Bank
	tm := dram.DefaultTiming()
	now := units.Time(0)
	for i := 0; i < b.N; i++ {
		_, free := bank.Schedule(now, dram.AccessKind(i%3), tm)
		now = free
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c := cache.New(cache.L2Config())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(i*64) % (1 << 22)
		if !c.Access(addr, i%4 == 0) {
			c.Fill(addr, false)
		}
	}
}

func BenchmarkRMATGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := graph.GenRMAT(12, 8, graph.LDBCLikeParams(), int64(i))
		if g.NumE() == 0 {
			b.Fatal("empty graph")
		}
	}
}

func BenchmarkPowerModel(b *testing.B) {
	m := power.HMC20()
	act := power.FullBandwidth()
	act.PIMRate = 3
	var total units.Watt
	for i := 0; i < b.N; i++ {
		total = m.Compute(act).Total()
	}
	b.ReportMetric(float64(total), "watts")
}

func BenchmarkBFSReference(b *testing.B) {
	g := graph.GenRMAT(14, 8, graph.LDBCLikeParams(), 3)
	src := g.HighDegreeVertex(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.BFSLevels(g, src)
	}
}

// BenchmarkShardedEngine measures the conservative-parallel cluster on
// synthetic traffic: each of 4 domains runs a self-rescheduling local
// event chain and sends a cross-shard message every 16th event. The
// serial sub-bench is the retained reference driver (shards=1), the
// sharded one the parallel barrier scheme (one worker per domain);
// results are byte-identical between the two by construction, so the
// pair isolates the engine overhead/scaling. On a single-core host the
// sharded variant only measures barrier overhead — see DESIGN.md §12.
func BenchmarkShardedEngine(b *testing.B) {
	const domains = 4
	const lookahead = 32 * units.Nanosecond
	run := func(b *testing.B, shards int) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cl, err := sim.NewCluster(lookahead, domains)
			if err != nil {
				b.Fatal(err)
			}
			cl.SetShards(shards)
			var fired [domains]int
			for d := 0; d < domains; d++ {
				d := d
				var step func(now units.Time)
				step = func(now units.Time) {
					fired[d]++
					if fired[d]%16 == 0 {
						cl.Send(d, (d+1)%domains, now+lookahead, func(units.Time) {})
					}
					if fired[d] < 4096 {
						cl.Domain(d).At(now+10*units.Nanosecond, step)
					}
				}
				cl.Domain(d).At(units.Time(d+1)*units.Nanosecond, step)
			}
			cl.RunUntil(1 * units.Millisecond)
			for d := 0; d < domains; d++ {
				if fired[d] != 4096 {
					b.Fatalf("domain %d fired %d events", d, fired[d])
				}
			}
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, 1) })
	b.Run("sharded", func(b *testing.B) { run(b, 0) })
}

// BenchmarkMultiCubeSystem runs the full 4-cube chain platform (one dc
// workload replica per cube, CoolPIM-HW policy) end to end, serial
// reference vs sharded. The scaling curve in DESIGN.md §12 comes from
// this benchmark at GOMAXPROCS >= 4.
func BenchmarkMultiCubeSystem(b *testing.B) {
	g := graph.GenRMAT(11, 8, graph.LDBCLikeParams(), 7)
	cfg := experiments.ScaledConfig(11)
	cfg.Net = hmc.DefaultNetworkConfig()
	cfg.Net.Cubes = 4
	run := func(b *testing.B, shards int) {
		cfg := cfg
		cfg.Net.Shards = shards
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := system.Run("dc", core.CoolPIMHW, cfg, g)
			if err != nil {
				b.Fatal(err)
			}
			if res.VerifyErr != nil {
				b.Fatal(res.VerifyErr)
			}
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, 1) })
	b.Run("sharded", func(b *testing.B) { run(b, 0) })
}
