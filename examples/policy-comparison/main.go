// policy-comparison: run one workload under all five system
// configurations of the paper's evaluation and show how the closed-loop
// throttling plays out over time (a miniature Fig. 10 column plus the
// Fig. 14 time series).
//
//	go run ./examples/policy-comparison -workload bfs-twc
package main

import (
	"flag"
	"fmt"
	"log"

	"coolpim/internal/core"
	"coolpim/internal/experiments"
	"coolpim/internal/graph"
	"coolpim/internal/kernels"
	"coolpim/internal/system"
)

func main() {
	workload := flag.String("workload", "bfs-twc", "workload name")
	scale := flag.Int("scale", 14, "graph scale")
	reps := flag.Int("reps", 1, "workload repetitions")
	flag.Parse()

	g := graph.GenRMAT(*scale, 8, graph.LDBCLikeParams(), 42)
	cfg := experiments.ScaledConfig(*scale)
	fmt.Printf("workload %s on %d vertices / %d edges\n\n", *workload, g.NumV, g.NumE())

	results := map[core.PolicyKind]*system.Result{}
	for _, pol := range core.Kinds() {
		w, err := kernels.NewSized(*workload, *reps)
		if err != nil {
			log.Fatal(err)
		}
		res, err := system.RunWorkload(w, pol, cfg, g)
		if err != nil {
			log.Fatalf("%v: %v", pol, err)
		}
		if res.VerifyErr != nil {
			log.Fatalf("%v: verification failed: %v", pol, res.VerifyErr)
		}
		results[pol] = res
	}

	base := results[core.NonOffloading]
	fmt.Printf("%-18s %-12s %-9s %-11s %-10s %s\n",
		"policy", "runtime", "speedup", "PIM rate", "peak temp", "warnings")
	for _, pol := range core.Kinds() {
		r := results[pol]
		fmt.Printf("%-18v %-12v %-9.2f %-11.2f %-10.1f %d\n",
			pol, r.Runtime, r.Speedup(base), float64(r.AvgPIMRate),
			float64(r.PeakDRAM), r.WarningsSeen)
	}

	fmt.Println("\nPIM-rate time series (op/ns per 100µs window):")
	fmt.Printf("%-8s %-10s %-12s %-12s\n", "t(ms)", "naive", "coolpim-sw", "coolpim-hw")
	n := len(results[core.NaiveOffloading].Series)
	for _, r := range []core.PolicyKind{core.CoolPIMSW, core.CoolPIMHW} {
		if len(results[r].Series) > n {
			n = len(results[r].Series)
		}
	}
	cell := func(pol core.PolicyKind, i int) string {
		s := results[pol].Series
		if i >= len(s) {
			return "-"
		}
		return fmt.Sprintf("%.2f", float64(s[i].PIMRate))
	}
	for i := 0; i < n; i++ {
		t := float64(i+1) * 0.1
		fmt.Printf("%-8.1f %-10s %-12s %-12s\n", t,
			cell(core.NaiveOffloading, i), cell(core.CoolPIMSW, i), cell(core.CoolPIMHW, i))
	}
}
