// thermal-explorer: interactively explore the HMC 2.0 thermal model —
// how peak DRAM temperature responds to data bandwidth, PIM offloading
// rate and the cooling solution (the parameter space behind the paper's
// Figs. 4 and 5).
//
//	go run ./examples/thermal-explorer
//	go run ./examples/thermal-explorer -bw 320 -pim 4 -cooling high-end
package main

import (
	"flag"
	"fmt"
	"log"

	"coolpim/internal/dram"
	"coolpim/internal/power"
	"coolpim/internal/thermal"
	"coolpim/internal/units"
)

func solve(cool thermal.Cooling, bw units.BytesPerSecond, rate units.OpsPerNs) units.Celsius {
	b := power.HMC20().Compute(power.Activity{
		ExternalBW:        bw,
		InternalRegularBW: bw,
		PIMRate:           rate,
	})
	m := thermal.New(thermal.HMC20Stack(), cool)
	m.AddLayerPower(0, b.LogicDie())
	stack := thermal.HMC20Stack()
	per := b.DRAMStack() / units.Watt(float64(stack.DRAMDies))
	for l := 1; l <= stack.DRAMDies; l++ {
		m.AddLayerPower(l, per)
	}
	if m.SolveSteady() < 0 {
		log.Fatalf("steady solve did not converge (%s, %v, %v op/ns)", cool.Name, bw, rate)
	}
	return m.PeakDRAM()
}

func main() {
	bw := flag.Float64("bw", -1, "data bandwidth GB/s (-1 = sweep)")
	pim := flag.Float64("pim", -1, "PIM rate op/ns (-1 = sweep)")
	coolName := flag.String("cooling", "commodity", "passive, low-end, commodity, high-end")
	flag.Parse()

	cool, err := thermal.ParseCooling(*coolName)
	if err != nil {
		log.Fatal(err)
	}

	if *bw >= 0 && *pim >= 0 {
		t := solve(cool, units.GBps(*bw), units.OpsPerNs(*pim))
		fmt.Printf("%s, %.0fGB/s + %.1f op/ns -> peak DRAM %.1f°C (%v)\n",
			cool.Name, *bw, *pim, float64(t), dram.PhaseForTemp(t))
		return
	}

	fmt.Printf("Peak DRAM temperature (°C) under %s\n", cool.Name)
	fmt.Printf("rows: data bandwidth (GB/s); columns: PIM rate (op/ns)\n\n")
	rates := []float64{0, 1, 1.3, 2, 3, 4, 5, 6.5}
	fmt.Printf("%-10s", "BW\\rate")
	for _, r := range rates {
		fmt.Printf(" %6.1f", r)
	}
	fmt.Println()
	for _, b := range []float64{0, 80, 160, 240, 320} {
		fmt.Printf("%-10.0f", b)
		for _, r := range rates {
			t := solve(cool, units.GBps(b), units.OpsPerNs(r))
			marker := ""
			switch {
			case t > 105:
				marker = "*" // beyond operating limit
			case t > 85:
				marker = "!"
			}
			fmt.Printf(" %5.1f%-1s", float64(t), marker)
		}
		fmt.Println()
	}
	fmt.Println("\n'!' = above the normal range (derated), '*' = beyond the 105°C limit (shutdown)")
}
