// graph-analytics: run the full GraphBIG workload suite of the paper's
// evaluation (dc, four BFS variants, three SSSP variants, kcore,
// pagerank) under a chosen policy and report speedups over the
// non-offloading baseline — a miniature Fig. 10.
//
//	go run ./examples/graph-analytics            # CoolPIM(HW)
//	go run ./examples/graph-analytics -policy naive
package main

import (
	"flag"
	"fmt"
	"log"

	"coolpim/internal/core"
	"coolpim/internal/experiments"
	"coolpim/internal/graph"
	"coolpim/internal/kernels"
	"coolpim/internal/system"
)

func main() {
	policy := flag.String("policy", "coolpim-hw", "naive, coolpim-sw, coolpim-hw, ideal")
	scale := flag.Int("scale", 13, "graph scale")
	flag.Parse()

	if *scale <= 0 {
		log.Fatalf("-scale must be positive (got %d)", *scale)
	}
	pol, err := core.ParsePolicy(*policy)
	if err != nil {
		log.Fatal(err)
	}
	if pol == core.NonOffloading {
		log.Fatalf("policy %q is the comparison baseline; pick an offloading policy", *policy)
	}

	g := graph.GenRMAT(*scale, 8, graph.LDBCLikeParams(), 42)
	cfg := experiments.ScaledConfig(*scale)
	fmt.Printf("graph: %d vertices, %d edges; policy: %v\n\n", g.NumV, g.NumE(), pol)
	fmt.Printf("%-10s %-12s %-12s %-10s %-10s %s\n",
		"workload", "baseline", "runtime", "speedup", "PIM rate", "peak temp")

	for _, name := range kernels.Names() {
		base, err := system.Run(name, core.NonOffloading, cfg, g)
		if err != nil {
			log.Fatalf("%s baseline: %v", name, err)
		}
		res, err := system.Run(name, pol, cfg, g)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		status := ""
		if res.VerifyErr != nil {
			status = "VERIFY FAILED"
		}
		fmt.Printf("%-10s %-12v %-12v %-10.2f %-10.2f %-8.1f %s\n",
			name, base.Runtime, res.Runtime, res.Speedup(base),
			float64(res.AvgPIMRate), float64(res.PeakDRAM), status)
	}
}
