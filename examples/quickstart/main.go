// Quickstart: the smallest end-to-end CoolPIM run.
//
// It generates a small LDBC-like graph, runs the degree-centrality
// workload on the simulated GPU+HMC platform under CoolPIM's
// hardware-based throttling, and prints the headline numbers.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"coolpim/internal/core"
	"coolpim/internal/experiments"
	"coolpim/internal/graph"
	"coolpim/internal/system"
)

func main() {
	// 1. A power-law input graph (the paper uses LDBC social graphs).
	g := graph.GenRMAT(13, 8, graph.LDBCLikeParams(), 1)
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumV, g.NumE())

	// 2. The evaluation platform: Table IV GPU + HMC 2.0 cube +
	//    commodity-server cooling, with the thermal feedback loop armed.
	//    Caches scale with the input so the property array exceeds the
	//    L2, as the paper's LDBC inputs exceed its 1 MB L2.
	cfg := experiments.ScaledConfig(13)

	// 3. Run degree centrality under CoolPIM(HW): every atomicAdd is a
	//    PIM-offload candidate, gated by the per-SM PIM Control Units.
	res, err := system.Run("dc", core.CoolPIMHW, cfg, g)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("runtime:        %v\n", res.Runtime)
	fmt.Printf("PIM offloads:   %d ops (%v average rate)\n", res.PIMOps, res.AvgPIMRate)
	fmt.Printf("external BW:    %v\n", res.AvgExtBW)
	fmt.Printf("peak DRAM temp: %.1f°C (normal range ends at 85°C)\n", float64(res.PeakDRAM))
	if res.VerifyErr != nil {
		log.Fatalf("device results diverged from the sequential reference: %v", res.VerifyErr)
	}
	fmt.Println("device results match the sequential reference ✓")

	// 4. Compare against the non-offloading baseline.
	base, err := system.Run("dc", core.NonOffloading, cfg, g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("speedup over non-offloading baseline: %.2f×\n", res.Speedup(base))
}
