#!/bin/sh
# obs_smoke.sh — end-to-end guard on the live observability plane.
#
# Runs a short simulation with the diagnostics HTTP server attached and
# held open, fetches /metrics, /healthz and /spans while it is up, and
# validates the run's Chrome trace export as trace_event JSON. Uses
# cmd/coolpim-trace as the HTTP client and the JSON validator so the
# test needs nothing beyond the Go toolchain.
#
# Usage: scripts/obs_smoke.sh   (from the repository root)
set -eu

GO=${GO:-go}
OUT=bin/obs-smoke
mkdir -p "$OUT"

$GO build -o bin/coolpim-sim ./cmd/coolpim-sim
$GO build -o bin/coolpim-trace ./cmd/coolpim-trace

# Launch the sim on an ephemeral port, holding the server open after the
# run so the endpoint fetches below cannot race run completion.
bin/coolpim-sim -workload dc -policy coolpim-hw -scale 12 -reps 1 \
    -diag-addr 127.0.0.1:0 -diag-hold 60s \
    -trace-out "$OUT/trace.jsonl" -spans-out "$OUT/spans.jsonl" \
    -trace-chrome "$OUT/trace.json" -flight-out "$OUT/ring.flight.jsonl" \
    >"$OUT/sim.log" 2>&1 &
SIM_PID=$!
trap 'kill $SIM_PID 2>/dev/null || true' EXIT INT TERM

# Wait for the server to announce its bound address.
ADDR=
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's|^diag: serving on http://\([^ ]*\).*|\1|p' "$OUT/sim.log")
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "obs-smoke: diag server never announced its address"; cat "$OUT/sim.log"; exit 1; }

# Wait for the run to finish (the hold banner prints after the exports).
for _ in $(seq 1 600); do
    grep -q 'diag: holding server' "$OUT/sim.log" && break
    sleep 0.2
done
grep -q 'diag: holding server' "$OUT/sim.log" || { echo "obs-smoke: run did not complete"; cat "$OUT/sim.log"; exit 1; }

# Live endpoints.
bin/coolpim-trace -get "http://$ADDR/healthz" | grep -q '"status":"ok"' \
    || { echo "obs-smoke: /healthz unhealthy"; exit 1; }
bin/coolpim-trace -get "http://$ADDR/metrics" >"$OUT/metrics.prom"
grep -q '^coolpim_pim_ops_total' "$OUT/metrics.prom" \
    || { echo "obs-smoke: /metrics missing simulator counters"; cat "$OUT/metrics.prom"; exit 1; }
# /spans is a recency window (the last 512 spans), so assert on the
# thermal ticks that run to the end of the simulation rather than the
# id-1 engine.run root.
bin/coolpim-trace -get "http://$ADDR/spans" | grep -q '"name":"thermal.tick"' \
    || { echo "obs-smoke: /spans missing thermal.tick spans"; exit 1; }
grep -q '"name":"engine.run"' "$OUT/spans.jsonl" \
    || { echo "obs-smoke: spans export missing engine.run root"; exit 1; }

kill $SIM_PID 2>/dev/null || true
wait $SIM_PID 2>/dev/null || true
trap - EXIT INT TERM

# Offline artifacts: the Chrome export must validate as trace_event
# JSON, and converting the JSONL exports must agree with it.
bin/coolpim-trace -check "$OUT/trace.json"
bin/coolpim-trace -events "$OUT/trace.jsonl" -spans "$OUT/spans.jsonl" -out "$OUT/trace2.json"
cmp "$OUT/trace.json" "$OUT/trace2.json" \
    || { echo "obs-smoke: converter disagrees with the sim's own Chrome export"; exit 1; }
[ -s "$OUT/ring.flight.jsonl" ] || { echo "obs-smoke: empty flight ring dump"; exit 1; }

echo "obs-smoke OK"
