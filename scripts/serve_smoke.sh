#!/bin/sh
# serve_smoke.sh — end-to-end guard on the simulation service.
#
# Boots coolpim-serve on an ephemeral port, fires three concurrent
# identical campaign submissions at it, and asserts the memoization
# contract: exactly one campaign executes (the other two are cache
# hits), all three response bodies are byte-identical, the shared
# ledger holds exactly one entry per matrix cell, and a re-POST after
# the fact is a disk hit. Uses cmd/coolpim-trace as the HTTP client so
# the test needs nothing beyond the Go toolchain.
#
# Usage: scripts/serve_smoke.sh   (from the repository root)
set -eu

GO=${GO:-go}
OUT=bin/serve-smoke
rm -rf "$OUT"
mkdir -p "$OUT"

$GO build -o bin/coolpim-serve ./cmd/coolpim-serve
$GO build -o bin/coolpim-trace ./cmd/coolpim-trace

SPEC='{"profile":"test","workloads":["dc","pagerank"],"policies":["baseline","coolpim-hw"],"parallel":2}'

bin/coolpim-serve -addr 127.0.0.1:0 \
    -cache-dir "$OUT/cache" -ledger "$OUT/ledger.jsonl" \
    >"$OUT/serve.log" 2>&1 &
SERVE_PID=$!
trap 'kill $SERVE_PID 2>/dev/null || true' EXIT INT TERM

# Wait for the server to announce its bound address.
ADDR=
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's|^coolpim-serve: listening on http://\([^ ]*\).*|\1|p' "$OUT/serve.log")
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "serve-smoke: server never announced its address"; cat "$OUT/serve.log"; exit 1; }

bin/coolpim-trace -get "http://$ADDR/healthz" | grep -q ok \
    || { echo "serve-smoke: /healthz unhealthy"; exit 1; }

# Three concurrent identical submissions: one execution, two joins.
for i in 1 2 3; do
    bin/coolpim-trace -post "http://$ADDR/v1/runs" -data "$SPEC" -v \
        >"$OUT/body.$i" 2>"$OUT/hdr.$i" &
    eval "CLIENT_$i=\$!"
done
for i in 1 2 3; do
    eval "pid=\$CLIENT_$i"
    wait "$pid" || { echo "serve-smoke: client $i failed"; cat "$OUT/hdr.$i"; exit 1; }
done

# Byte-identical bodies.
cmp -s "$OUT/body.1" "$OUT/body.2" && cmp -s "$OUT/body.1" "$OUT/body.3" \
    || { echo "serve-smoke: concurrent responses differ"; exit 1; }
[ -s "$OUT/body.1" ] || { echo "serve-smoke: empty response body"; exit 1; }

# Exactly two of the three were cache hits (disk hit or in-flight join).
HITS=$(cat "$OUT"/hdr.1 "$OUT"/hdr.2 "$OUT"/hdr.3 | grep -c '^X-Cache: hit' || true)
[ "$HITS" = 2 ] || { echo "serve-smoke: $HITS cache hits, want 2"; cat "$OUT"/hdr.*; exit 1; }

# The server agrees: one execution, two hits, nothing failed.
bin/coolpim-trace -get "http://$ADDR/metrics" >"$OUT/metrics.prom"
for want in 'coolpim_campaigns_executed_total 1' 'coolpim_cache_hits_total 2' \
            'coolpim_cache_misses_total 1' 'coolpim_campaigns_failed_total 0'; do
    grep -q "^$want\$" "$OUT/metrics.prom" \
        || { echo "serve-smoke: metrics missing '$want'"; cat "$OUT/metrics.prom"; exit 1; }
done

# The shared ledger holds exactly one entry per matrix cell (2x2): the
# concurrent submissions never re-entered the runner.
CELLS=$(wc -l < "$OUT/ledger.jsonl")
[ "$CELLS" -eq 4 ] || { echo "serve-smoke: ledger has $CELLS entries, want 4"; cat "$OUT/ledger.jsonl"; exit 1; }

# A fourth, sequential re-POST is a pure disk hit with the same bytes.
bin/coolpim-trace -post "http://$ADDR/v1/runs" -data "$SPEC" -v \
    >"$OUT/body.4" 2>"$OUT/hdr.4"
grep -q '^X-Cache: hit' "$OUT/hdr.4" || { echo "serve-smoke: re-POST missed the cache"; cat "$OUT/hdr.4"; exit 1; }
cmp -s "$OUT/body.1" "$OUT/body.4" || { echo "serve-smoke: re-POST returned different bytes"; exit 1; }

# The run id resolves to a done status document.
RUNID=$(sed -n 's/^X-Run-Id: //p' "$OUT/hdr.4")
[ -n "$RUNID" ] || { echo "serve-smoke: no X-Run-Id header"; cat "$OUT/hdr.4"; exit 1; }
bin/coolpim-trace -get "http://$ADDR/v1/runs/$RUNID" | grep -q '"state":"done"' \
    || { echo "serve-smoke: run $RUNID not done"; exit 1; }

kill $SERVE_PID 2>/dev/null || true
wait $SERVE_PID 2>/dev/null || true
trap - EXIT INT TERM

echo "serve-smoke OK"
