// Command graphgen generates the LDBC-like RMAT graphs the workloads run
// on and reports their structure (degree histogram, hubs, component
// count) — useful for sizing experiments and sanity-checking the
// generator's power-law shape.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"coolpim/internal/graph"
)

func main() {
	scale := flag.Int("scale", 14, "2^scale vertices")
	edgeFactor := flag.Int("ef", 8, "edges per vertex")
	seed := flag.Int64("seed", 42, "generator seed")
	uniform := flag.Bool("uniform", false, "generate a uniform (Erdős–Rényi) graph instead of RMAT")
	flag.Parse()

	if *scale <= 0 {
		fmt.Fprintf(os.Stderr, "-scale must be positive (got %d)\n", *scale)
		os.Exit(2)
	}
	if *edgeFactor <= 0 {
		fmt.Fprintf(os.Stderr, "-ef must be positive (got %d)\n", *edgeFactor)
		os.Exit(2)
	}

	var g *graph.Graph
	if *uniform {
		n := 1 << *scale
		g = graph.GenUniform(n, *edgeFactor*n, *seed)
		fmt.Printf("uniform graph: scale=%d ef=%d seed=%d\n", *scale, *edgeFactor, *seed)
	} else {
		g = graph.GenRMAT(*scale, *edgeFactor, graph.LDBCLikeParams(), *seed)
		fmt.Printf("LDBC-like RMAT graph: scale=%d ef=%d seed=%d\n", *scale, *edgeFactor, *seed)
	}

	fmt.Printf("vertices: %d\nedges:    %d\n", g.NumV, g.NumE())
	v, d := g.MaxOutDegree()
	fmt.Printf("max out-degree: %d (vertex %d)\n", d, v)
	_, comps := graph.ConnectedComponents(g)
	fmt.Printf("weakly connected components: %d\n", comps)

	fmt.Println("\nout-degree histogram (bucket = log2):")
	hist := g.DegreeHistogram()
	maxCount := 0
	for _, c := range hist {
		if c > maxCount {
			maxCount = c
		}
	}
	for b, c := range hist {
		if c == 0 {
			continue
		}
		lo, hi := 0, 0
		if b > 0 {
			lo, hi = 1<<(b-1), 1<<b-1
		}
		bar := strings.Repeat("#", c*50/maxCount)
		fmt.Printf("deg %6d-%-6d %8d %s\n", lo, hi, c, bar)
	}
}
