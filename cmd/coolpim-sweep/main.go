// Command coolpim-sweep runs a (workload × policy) campaign matrix on
// the fault-tolerant runner: a bounded worker pool with per-run
// deadlines, deterministic retry, panic isolation and a JSONL run
// ledger that makes interrupted campaigns resumable.
//
// Usage:
//
//	coolpim-sweep [-profile paper|full|quick|test]
//	              [-workloads dc,pagerank] [-policies baseline,naive]
//	              [-parallel N] [-timeout 10m] [-retries 2] [-backoff 1s]
//	              [-fail-fast] [-ledger runs.jsonl] [-resume]
//	              [-out report.txt] [-metrics-out metrics.prom] [-v]
//	              [-diag-addr 127.0.0.1:8787] [-flight-dir dumps/]
//
// -metrics-out is flushed atomically (write-to-temp + rename) after
// every completed run, so a killed campaign still leaves a consistent
// metrics file behind. -diag-addr serves the campaign's live state over
// HTTP: /metrics, /healthz, /runs (per-cell status) and /debug/pprof.
// -flight-dir makes panicking or deadline-blown cells dump their flight
// recorder rings there for post-mortem.
//
// Exit codes: 0 success, 1 campaign failure, 2 usage error,
// 3 interrupted (test hook).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"coolpim/internal/core"
	"coolpim/internal/experiments"
	"coolpim/internal/hmc"
	runnerpkg "coolpim/internal/runner"
	"coolpim/internal/system"
	"coolpim/internal/telemetry"
	"coolpim/internal/telemetry/diagserver"
	"coolpim/internal/units"
)

func main() {
	os.Exit(run())
}

func run() int {
	profileName := flag.String("profile", "paper", "system profile: paper, full, quick, test")
	workloadsFlag := flag.String("workloads", "", "comma-separated workloads (default: full paper set)")
	policiesFlag := flag.String("policies", "", "comma-separated policies: "+strings.Join(core.PolicyNames(), ", ")+" (default: all)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "max concurrent runs")
	timeout := flag.Duration("timeout", 0, "per-run wall-clock deadline (0 = none)")
	retries := flag.Int("retries", 0, "retry budget per run")
	backoff := flag.Duration("backoff", time.Second, "base retry backoff (doubles per attempt)")
	failFast := flag.Bool("fail-fast", false, "stop dispatching new runs after the first failure")
	ledgerPath := flag.String("ledger", "", "JSONL run ledger path (enables checkpointing)")
	resume := flag.Bool("resume", false, "reuse completed runs from the ledger (requires -ledger)")
	outPath := flag.String("out", "", "write the report here instead of stdout")
	metricsOut := flag.String("metrics-out", "", "write campaign metrics (Prometheus text format) here")
	verbose := flag.Bool("v", false, "print per-run progress to stderr")
	interruptAfter := flag.Int("interrupt-after", 0, "test hook: exit(3) after N executed runs, simulating a mid-campaign kill")
	diagAddr := flag.String("diag-addr", "", "serve live campaign diagnostics over HTTP on this address")
	flightDir := flag.String("flight-dir", "", "dump the flight ring of panicking/deadline-blown runs into this directory")
	thermalMode := flag.String("thermal-mode", "exact", "thermal coupling tier: exact (bit-identical outputs) or adaptive (interval-based, epsilon-bounded, faster)")
	powerDelta := flag.Float64("power-delta", 0, "adaptive tier: per-vault-cell power change in watts that forces an immediate exact solve (0 = built-in default)")
	maxThermalInterval := flag.Duration("max-thermal-interval", 0, "adaptive tier: cap on the coalesced solve window, simulated time (0 = built-in default)")
	cubes := flag.Int("cubes", 1, "number of HMC cubes per run (>1 networks them, one workload replica per cube)")
	topology := flag.String("topology", "chain", "inter-cube link topology: "+strings.Join(hmc.TopologyNames(), ", "))
	linkLatency := flag.Duration("link-latency", 0, "per-hop inter-cube link latency, simulated time (0 = built-in default)")
	shards := flag.Int("shards", 0, "engine shards for multi-cube runs: 0 = one per cube, 1 = serial reference")
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments: %v\n", flag.Args())
		return 2
	}
	if *resume && *ledgerPath == "" {
		fmt.Fprintln(os.Stderr, "-resume requires -ledger")
		return 2
	}

	prof, ok := profileByName(*profileName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *profileName)
		return 2
	}
	mode, err := system.ParseThermalMode(*thermalMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *powerDelta < 0 || *maxThermalInterval < 0 {
		fmt.Fprintln(os.Stderr, "-power-delta and -max-thermal-interval must be non-negative")
		return 2
	}
	// The coupling knobs are part of the profile hash, so a ledger
	// recorded under one tier is never silently reused by the other.
	prof.Sys.ThermalMode = mode
	prof.Sys.PowerDeltaThreshold = units.Watt(*powerDelta)
	prof.Sys.MaxThermalInterval = units.FromNanoseconds(float64(maxThermalInterval.Nanoseconds()))
	// The network config is part of the profile name and hash, so a
	// single-cube ledger is never resumed into a multi-cube campaign.
	net, err := hmc.FlagConfig(*cubes, *topology,
		units.FromNanoseconds(float64(linkLatency.Nanoseconds())), *shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	prof = experiments.MultiCubeProfile(prof, net)
	workloads := splitList(*workloadsFlag)
	var policies []core.PolicyKind
	for _, name := range splitList(*policiesFlag) {
		pol, err := core.ParsePolicy(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		policies = append(policies, pol)
	}

	var ledger *runnerpkg.Ledger
	if *ledgerPath != "" {
		var err error
		ledger, err = runnerpkg.OpenLedger(*ledgerPath, *resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ledger:", err)
			return 1
		}
		defer ledger.Close()
		if *resume && *verbose {
			fmt.Fprintf(os.Stderr, "ledger %s: %d completed runs loaded\n", *ledgerPath, ledger.Resumable())
		}
	}

	if *flightDir != "" {
		if err := os.MkdirAll(*flightDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "flight-dir:", err)
			return 1
		}
	}

	tel := telemetry.New()
	tel.Spans.SetWallClock(func() int64 { return time.Now().UnixNano() })
	opts := experiments.MatrixOpts{
		Workloads: workloads,
		Policies:  policies,
		Parallel:  *parallel,
		Timeout:   *timeout,
		Retries:   *retries,
		Backoff:   *backoff,
		FailFast:  *failFast,
		Ledger:    ledger,
		Telemetry: tel,
		FlightDir: *flightDir,
	}
	if *verbose {
		opts.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}

	var diag *diagserver.Server
	var runStarts sync.Map // key -> time.Time, written from worker goroutines
	if *diagAddr != "" {
		var err error
		diag, err = diagserver.New(*diagAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "diag:", err)
			return 1
		}
		defer diag.Close()
		tel.Sink = diag
		tel.RunID = "sweep/" + prof.Name
		fmt.Fprintf(os.Stderr, "diag: serving on http://%s (endpoints: /metrics /healthz /runs /spans /debug/pprof)\n", diag.Addr())
		opts.OnRunStart = func(key string, attempt int) {
			runStarts.Store(key, time.Now())
			diag.Runs().Started(key, attempt)
		}
	}

	var executed, fromLedger, failed int
	opts.OnRunDone = func(key string, err error, ledgered bool) {
		if diag != nil {
			var wall time.Duration
			if t0, ok := runStarts.Load(key); ok {
				wall = time.Since(t0.(time.Time))
			}
			diag.Runs().Finished(key, err, ledgered, wall)
			tel.Publish(0)
		}
		// Flush metrics after every completion so a killed campaign
		// still leaves a consistent (atomically renamed) metrics file.
		if merr := writeMetrics(*metricsOut, tel); merr != nil {
			fmt.Fprintln(os.Stderr, "metrics:", merr)
		}
		switch {
		case ledgered:
			fromLedger++
		case err != nil:
			failed++
		default:
			executed++
			if *interruptAfter > 0 && executed >= *interruptAfter {
				// The run's ledger entry is durable (appended and fsynced
				// before this callback), and the metrics flush above has
				// landed; exiting here simulates a kill arriving
				// mid-campaign.
				fmt.Fprintf(os.Stderr, "interrupt-after: stopping after %d executed runs\n", executed)
				os.Exit(3)
			}
		}
	}

	rows, err := experiments.RunMatrixOpts(context.Background(), prof, opts)
	if merr := writeMetrics(*metricsOut, tel); merr != nil {
		fmt.Fprintln(os.Stderr, "metrics:", merr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaign failed:")
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			return 1
		}
		defer f.Close()
		out = f
	}
	report(out, prof, rows)
	fmt.Printf("campaign: %d cells, executed %d, from ledger %d, failed %d\n",
		executed+fromLedger+failed, executed, fromLedger, failed)
	return 0
}

func profileByName(name string) (experiments.Profile, bool) {
	switch name {
	case "paper":
		return experiments.PaperProfile(), true
	case "full":
		return experiments.FullProfile(), true
	case "quick":
		return experiments.QuickProfile(), true
	case "test":
		return experiments.TestProfile(), true
	}
	return experiments.Profile{}, false
}

func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// writeMetrics dumps the campaign registry atomically: the text is
// rendered into a temp file in the destination directory and renamed
// over the target, so readers (and a mid-campaign kill) never observe a
// half-written file.
func writeMetrics(path string, tel *telemetry.Telemetry) error {
	if path == "" {
		return nil
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".metrics-*")
	if err != nil {
		return err
	}
	if err := tel.Registry.WritePrometheus(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// report prints the campaign results as one table per metric family,
// mirroring the Fig. 10-13 layout but restricted to the selected cells.
func report(w io.Writer, prof experiments.Profile, rows []experiments.Row) {
	fmt.Fprintf(w, "## sweep report — profile %s, %d workloads\n\n", prof.Name, len(rows))
	if len(rows) == 0 {
		return
	}
	pols := experiments.SortedPolicies(rows[0])
	haveBase := false
	for _, p := range pols {
		if p == core.NonOffloading {
			haveBase = true
		}
	}

	fmt.Fprintf(w, "%-10s %-18s %-12s %-12s %-10s", "workload", "policy", "runtime", "pim(op/ns)", "peak(°C)")
	if haveBase {
		fmt.Fprintf(w, " %-8s", "speedup")
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		for _, p := range pols {
			res := r.Results[p]
			if res == nil {
				continue
			}
			fmt.Fprintf(w, "%-10s %-18v %-12v %-12.2f %-10.1f",
				r.Workload, p, res.Runtime, float64(res.AvgPIMRate), float64(res.PeakDRAM))
			if haveBase {
				fmt.Fprintf(w, " %-8.3f", r.Speedup(p))
			}
			fmt.Fprintln(w)
		}
	}
	if haveBase {
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%-18s %s\n", "policy", "gmean speedup")
		for _, p := range pols {
			p := p
			g := experiments.GeoMean(rows, func(r experiments.Row) float64 { return r.Speedup(p) })
			if math.IsNaN(g) {
				continue
			}
			fmt.Fprintf(w, "%-18v %.3f\n", p, g)
		}
	}
	fmt.Fprintln(w)
}
