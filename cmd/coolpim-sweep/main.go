// Command coolpim-sweep runs a (workload × policy) campaign matrix on
// the fault-tolerant runner: a bounded worker pool with per-run
// deadlines, deterministic retry, panic isolation and a JSONL run
// ledger that makes interrupted campaigns resumable.
//
// Usage:
//
//	coolpim-sweep [-profile paper|full|quick|test]
//	              [-workloads dc,pagerank] [-policies baseline,naive]
//	              [-parallel N] [-timeout 10m] [-retries 2] [-backoff 1s]
//	              [-fail-fast] [-ledger runs.jsonl] [-resume]
//	              [-out report.txt] [-metrics-out metrics.prom] [-v]
//	              [-diag-addr 127.0.0.1:8787] [-flight-dir dumps/]
//
// -metrics-out is flushed atomically (write-to-temp + rename) after
// every completed run, so a killed campaign still leaves a consistent
// metrics file behind. -diag-addr serves the campaign's live state over
// HTTP: /metrics, /healthz, /runs (per-cell status) and /debug/pprof.
// -flight-dir makes panicking or deadline-blown cells dump their flight
// recorder rings there for post-mortem.
//
// Exit codes: 0 success, 1 campaign failure, 2 usage error,
// 3 interrupted (test hook).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
	"time"

	"coolpim/internal/atomicfile"
	"coolpim/internal/core"
	"coolpim/internal/experiments"
	runnerpkg "coolpim/internal/runner"
	"coolpim/internal/specflag"
	"coolpim/internal/telemetry"
	"coolpim/internal/telemetry/diagserver"
)

func main() {
	os.Exit(run())
}

func run() int {
	// The campaign description — profile, matrix selection, thermal and
	// network knobs, execution limits — comes from the shared spec flag
	// groups, so this CLI and the coolpim-serve JSON API accept and
	// reject exactly the same campaigns.
	binder := specflag.New()
	binder.Profile(flag.CommandLine)
	binder.Matrix(flag.CommandLine)
	binder.Runner(flag.CommandLine)
	binder.Thermal(flag.CommandLine)
	binder.Network(flag.CommandLine)
	ledgerPath := flag.String("ledger", "", "JSONL run ledger path (enables checkpointing)")
	resume := flag.Bool("resume", false, "reuse completed runs from the ledger (requires -ledger)")
	outPath := flag.String("out", "", "write the report here instead of stdout")
	metricsOut := flag.String("metrics-out", "", "write campaign metrics (Prometheus text format) here")
	verbose := flag.Bool("v", false, "print per-run progress to stderr")
	diagAddr := flag.String("diag-addr", "", "serve live campaign diagnostics over HTTP on this address")
	flightDir := flag.String("flight-dir", "", "dump the flight ring of panicking/deadline-blown runs into this directory")
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments: %v\n", flag.Args())
		return 2
	}
	if *resume && *ledgerPath == "" {
		fmt.Fprintln(os.Stderr, "-resume requires -ledger")
		return 2
	}

	spec, err := binder.Spec()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	// The coupling knobs are part of the profile hash, so a ledger
	// recorded under one tier is never silently reused by the other; the
	// network config is part of the profile name and hash, so a
	// single-cube ledger is never resumed into a multi-cube campaign.
	prof, err := spec.BuildProfile()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	var ledger *runnerpkg.Ledger
	if *ledgerPath != "" {
		var err error
		ledger, err = runnerpkg.OpenLedger(*ledgerPath, *resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ledger:", err)
			return 1
		}
		defer ledger.Close()
		if *resume && *verbose {
			fmt.Fprintf(os.Stderr, "ledger %s: %d completed runs loaded\n", *ledgerPath, ledger.Resumable())
		}
	}

	if *flightDir != "" {
		if err := os.MkdirAll(*flightDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "flight-dir:", err)
			return 1
		}
	}

	tel := telemetry.New()
	tel.Spans.SetWallClock(func() int64 { return time.Now().UnixNano() })
	opts, err := spec.BuildMatrixOpts()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	opts.Ledger = ledger
	opts.Telemetry = tel
	opts.FlightDir = *flightDir
	if *verbose {
		opts.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}

	var diag *diagserver.Server
	var runStarts sync.Map // key -> time.Time, written from worker goroutines
	if *diagAddr != "" {
		var err error
		diag, err = diagserver.New(*diagAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "diag:", err)
			return 1
		}
		defer diag.Close()
		tel.Sink = diag
		tel.RunID = "sweep/" + prof.Name
		fmt.Fprintf(os.Stderr, "diag: serving on http://%s (endpoints: /metrics /healthz /runs /spans /debug/pprof)\n", diag.Addr())
		opts.OnRunStart = func(key string, attempt int) {
			runStarts.Store(key, time.Now())
			diag.Runs().Started(key, attempt)
		}
	}

	mf := &metricsFlusher{path: *metricsOut}
	var executed, fromLedger, failed int
	opts.OnRunDone = func(key string, err error, ledgered bool) {
		if diag != nil {
			var wall time.Duration
			if t0, ok := runStarts.Load(key); ok {
				wall = time.Since(t0.(time.Time))
			}
			diag.Runs().Finished(key, err, ledgered, wall)
			tel.Publish(0)
		}
		// Flush metrics after every completion so a killed campaign
		// still leaves a consistent (atomically renamed) metrics file.
		mf.flush(tel)
		switch {
		case ledgered:
			fromLedger++
		case err != nil:
			failed++
		default:
			executed++
			if spec.InterruptAfter > 0 && executed >= spec.InterruptAfter {
				// The run's ledger entry is durable (appended and fsynced
				// before this callback), and the metrics flush above has
				// landed; exiting here simulates a kill arriving
				// mid-campaign.
				if line := mf.report(); line != "" {
					fmt.Fprintln(os.Stderr, line)
				}
				fmt.Fprintf(os.Stderr, "interrupt-after: stopping after %d executed runs\n", executed)
				os.Exit(3)
			}
		}
	}

	rows, err := experiments.RunMatrixOpts(context.Background(), prof, opts)
	mf.flush(tel)
	if err != nil {
		if line := mf.report(); line != "" {
			fmt.Fprintln(os.Stderr, line)
		}
		fmt.Fprintln(os.Stderr, "campaign failed:")
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			return 1
		}
		defer f.Close()
		out = f
	}
	report(out, prof, rows)
	if line := mf.report(); line != "" {
		fmt.Fprintln(out, line)
		fmt.Fprintln(out)
	}
	fmt.Printf("campaign: %d cells, executed %d, from ledger %d, failed %d\n",
		executed+fromLedger+failed, executed, fromLedger, failed)
	return 0
}

// metricsFlusher dumps the campaign registry atomically (temp+rename
// with guaranteed temp cleanup, see internal/atomicfile) after every
// completed run. Flush failures are remembered — first error plus a
// count — and surfaced exactly once in the campaign report instead of
// spamming one line per completed run.
type metricsFlusher struct {
	path     string
	firstErr error
	failures int
}

func (m *metricsFlusher) flush(tel *telemetry.Telemetry) {
	if m.path == "" {
		return
	}
	err := atomicfile.Write(m.path, tel.Registry.WritePrometheus)
	if err == nil {
		return
	}
	m.failures++
	if m.firstErr == nil {
		m.firstErr = err
	}
}

// report prints the one-line summary of any flush failures ("" when
// every flush landed).
func (m *metricsFlusher) report() string {
	if m.firstErr == nil {
		return ""
	}
	return fmt.Sprintf("metrics: %d flush(es) to %s failed; first error: %v",
		m.failures, m.path, m.firstErr)
}

// report prints the campaign results as one table per metric family,
// mirroring the Fig. 10-13 layout but restricted to the selected cells.
func report(w io.Writer, prof experiments.Profile, rows []experiments.Row) {
	fmt.Fprintf(w, "## sweep report — profile %s, %d workloads\n\n", prof.Name, len(rows))
	if len(rows) == 0 {
		return
	}
	pols := experiments.SortedPolicies(rows[0])
	haveBase := false
	for _, p := range pols {
		if p == core.NonOffloading {
			haveBase = true
		}
	}

	fmt.Fprintf(w, "%-10s %-18s %-12s %-12s %-10s", "workload", "policy", "runtime", "pim(op/ns)", "peak(°C)")
	if haveBase {
		fmt.Fprintf(w, " %-8s", "speedup")
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		for _, p := range pols {
			res := r.Results[p]
			if res == nil {
				continue
			}
			fmt.Fprintf(w, "%-10s %-18v %-12v %-12.2f %-10.1f",
				r.Workload, p, res.Runtime, float64(res.AvgPIMRate), float64(res.PeakDRAM))
			if haveBase {
				fmt.Fprintf(w, " %-8.3f", r.Speedup(p))
			}
			fmt.Fprintln(w)
		}
	}
	if haveBase {
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%-18s %s\n", "policy", "gmean speedup")
		for _, p := range pols {
			p := p
			g := experiments.GeoMean(rows, func(r experiments.Row) float64 { return r.Speedup(p) })
			if math.IsNaN(g) {
				continue
			}
			fmt.Fprintf(w, "%-18v %.3f\n", p, g)
		}
	}
	fmt.Fprintln(w)
}
