// Command coolpim-sweep runs a (workload × policy) campaign matrix on
// the fault-tolerant runner: a bounded worker pool with per-run
// deadlines, deterministic retry, panic isolation and a JSONL run
// ledger that makes interrupted campaigns resumable.
//
// Usage:
//
//	coolpim-sweep [-profile paper|full|quick|test]
//	              [-workloads dc,pagerank] [-policies baseline,naive]
//	              [-parallel N] [-timeout 10m] [-retries 2] [-backoff 1s]
//	              [-fail-fast] [-ledger runs.jsonl] [-resume]
//	              [-out report.txt] [-metrics-out metrics.prom] [-v]
//
// Exit codes: 0 success, 1 campaign failure, 2 usage error,
// 3 interrupted (test hook).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"coolpim/internal/core"
	"coolpim/internal/experiments"
	runnerpkg "coolpim/internal/runner"
	"coolpim/internal/telemetry"
)

func main() {
	os.Exit(run())
}

func run() int {
	profileName := flag.String("profile", "paper", "system profile: paper, full, quick, test")
	workloadsFlag := flag.String("workloads", "", "comma-separated workloads (default: full paper set)")
	policiesFlag := flag.String("policies", "", "comma-separated policies: "+strings.Join(core.PolicyNames(), ", ")+" (default: all)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "max concurrent runs")
	timeout := flag.Duration("timeout", 0, "per-run wall-clock deadline (0 = none)")
	retries := flag.Int("retries", 0, "retry budget per run")
	backoff := flag.Duration("backoff", time.Second, "base retry backoff (doubles per attempt)")
	failFast := flag.Bool("fail-fast", false, "stop dispatching new runs after the first failure")
	ledgerPath := flag.String("ledger", "", "JSONL run ledger path (enables checkpointing)")
	resume := flag.Bool("resume", false, "reuse completed runs from the ledger (requires -ledger)")
	outPath := flag.String("out", "", "write the report here instead of stdout")
	metricsOut := flag.String("metrics-out", "", "write campaign metrics (Prometheus text format) here")
	verbose := flag.Bool("v", false, "print per-run progress to stderr")
	interruptAfter := flag.Int("interrupt-after", 0, "test hook: exit(3) after N executed runs, simulating a mid-campaign kill")
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments: %v\n", flag.Args())
		return 2
	}
	if *resume && *ledgerPath == "" {
		fmt.Fprintln(os.Stderr, "-resume requires -ledger")
		return 2
	}

	prof, ok := profileByName(*profileName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *profileName)
		return 2
	}
	workloads := splitList(*workloadsFlag)
	var policies []core.PolicyKind
	for _, name := range splitList(*policiesFlag) {
		pol, err := core.ParsePolicy(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		policies = append(policies, pol)
	}

	var ledger *runnerpkg.Ledger
	if *ledgerPath != "" {
		var err error
		ledger, err = runnerpkg.OpenLedger(*ledgerPath, *resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ledger:", err)
			return 1
		}
		defer ledger.Close()
		if *resume && *verbose {
			fmt.Fprintf(os.Stderr, "ledger %s: %d completed runs loaded\n", *ledgerPath, ledger.Resumable())
		}
	}

	tel := telemetry.New()
	opts := experiments.MatrixOpts{
		Workloads: workloads,
		Policies:  policies,
		Parallel:  *parallel,
		Timeout:   *timeout,
		Retries:   *retries,
		Backoff:   *backoff,
		FailFast:  *failFast,
		Ledger:    ledger,
		Telemetry: tel,
	}
	if *verbose {
		opts.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}
	var executed, fromLedger, failed int
	opts.OnRunDone = func(key string, err error, ledgered bool) {
		switch {
		case ledgered:
			fromLedger++
		case err != nil:
			failed++
		default:
			executed++
			if *interruptAfter > 0 && executed >= *interruptAfter {
				// The run's ledger entry is durable (appended and fsynced
				// before this callback); exiting here simulates a kill
				// arriving mid-campaign.
				fmt.Fprintf(os.Stderr, "interrupt-after: stopping after %d executed runs\n", executed)
				os.Exit(3)
			}
		}
	}

	rows, err := experiments.RunMatrixOpts(context.Background(), prof, opts)
	if merr := writeMetrics(*metricsOut, tel); merr != nil {
		fmt.Fprintln(os.Stderr, "metrics:", merr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaign failed:")
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			return 1
		}
		defer f.Close()
		out = f
	}
	report(out, prof, rows)
	fmt.Printf("campaign: %d cells, executed %d, from ledger %d, failed %d\n",
		executed+fromLedger+failed, executed, fromLedger, failed)
	return 0
}

func profileByName(name string) (experiments.Profile, bool) {
	switch name {
	case "paper":
		return experiments.PaperProfile(), true
	case "full":
		return experiments.FullProfile(), true
	case "quick":
		return experiments.QuickProfile(), true
	case "test":
		return experiments.TestProfile(), true
	}
	return experiments.Profile{}, false
}

func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

func writeMetrics(path string, tel *telemetry.Telemetry) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return tel.Registry.WritePrometheus(f)
}

// report prints the campaign results as one table per metric family,
// mirroring the Fig. 10-13 layout but restricted to the selected cells.
func report(w io.Writer, prof experiments.Profile, rows []experiments.Row) {
	fmt.Fprintf(w, "## sweep report — profile %s, %d workloads\n\n", prof.Name, len(rows))
	if len(rows) == 0 {
		return
	}
	pols := experiments.SortedPolicies(rows[0])
	haveBase := false
	for _, p := range pols {
		if p == core.NonOffloading {
			haveBase = true
		}
	}

	fmt.Fprintf(w, "%-10s %-18s %-12s %-12s %-10s", "workload", "policy", "runtime", "pim(op/ns)", "peak(°C)")
	if haveBase {
		fmt.Fprintf(w, " %-8s", "speedup")
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		for _, p := range pols {
			res := r.Results[p]
			if res == nil {
				continue
			}
			fmt.Fprintf(w, "%-10s %-18v %-12v %-12.2f %-10.1f",
				r.Workload, p, res.Runtime, float64(res.AvgPIMRate), float64(res.PeakDRAM))
			if haveBase {
				fmt.Fprintf(w, " %-8.3f", r.Speedup(p))
			}
			fmt.Fprintln(w)
		}
	}
	if haveBase {
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%-18s %s\n", "policy", "gmean speedup")
		for _, p := range pols {
			p := p
			g := experiments.GeoMean(rows, func(r experiments.Row) float64 { return r.Speedup(p) })
			if math.IsNaN(g) {
				continue
			}
			fmt.Fprintf(w, "%-18v %.3f\n", p, g)
		}
	}
	fmt.Fprintln(w)
}
