package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"coolpim/internal/telemetry"
)

// TestMetricsFlusherSurfacesErrorOnce pins the -metrics-out failure
// handling: repeated flushes into an unwritable target record the first
// error plus a count, report() surfaces them exactly once, and no
// orphaned temp files are left next to the target.
func TestMetricsFlusherSurfacesErrorOnce(t *testing.T) {
	dir := t.TempDir()
	// An existing non-empty directory at the target path makes the
	// atomic rename fail on every flush.
	target := filepath.Join(dir, "metrics.prom")
	if err := os.MkdirAll(filepath.Join(target, "occupant"), 0o755); err != nil {
		t.Fatal(err)
	}

	tel := telemetry.New()
	mf := &metricsFlusher{path: target}
	for i := 0; i < 3; i++ {
		mf.flush(tel)
	}
	if mf.failures != 3 || mf.firstErr == nil {
		t.Fatalf("failures = %d, firstErr = %v; want 3 recorded failures", mf.failures, mf.firstErr)
	}
	line := mf.report()
	if !strings.Contains(line, "3 flush(es)") || !strings.Contains(line, target) {
		t.Fatalf("report line = %q", line)
	}

	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("flush failure leaked temp file %s", e.Name())
		}
	}

	// A healthy target reports nothing.
	ok := &metricsFlusher{path: filepath.Join(dir, "ok.prom")}
	ok.flush(tel)
	if ok.report() != "" {
		t.Fatalf("healthy flusher reported %q", ok.report())
	}
}

// A disabled flusher (no -metrics-out) is inert.
func TestMetricsFlusherDisabled(t *testing.T) {
	mf := &metricsFlusher{}
	mf.flush(telemetry.New())
	if mf.report() != "" || mf.failures != 0 {
		t.Fatalf("disabled flusher recorded state: %+v", mf)
	}
}
