// Command coolpim-sim runs one graph workload on the simulated GPU+HMC
// platform under a chosen offloading policy and prints the run's
// statistics — the single-experiment front end to the full system model.
//
// Example:
//
//	coolpim-sim -workload pagerank -policy coolpim-hw -scale 15 -cooling commodity
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"coolpim/internal/core"
	"coolpim/internal/experiments"
	"coolpim/internal/graph"
	"coolpim/internal/kernels"
	"coolpim/internal/system"
	"coolpim/internal/thermal"
)

var policyNames = map[string]core.PolicyKind{
	"baseline":   core.NonOffloading,
	"naive":      core.NaiveOffloading,
	"coolpim-sw": core.CoolPIMSW,
	"coolpim-hw": core.CoolPIMHW,
	"ideal":      core.IdealThermal,
}

var coolingNames = map[string]thermal.Cooling{
	"passive":   thermal.Passive,
	"low-end":   thermal.LowEndActive,
	"commodity": thermal.CommodityServer,
	"high-end":  thermal.HighEndActive,
}

func main() {
	workload := flag.String("workload", "dc", "workload: "+strings.Join(kernels.Names(), ", "))
	policy := flag.String("policy", "coolpim-hw", "policy: baseline, naive, coolpim-sw, coolpim-hw, ideal")
	scale := flag.Int("scale", 14, "RMAT graph scale (2^scale vertices)")
	edgeFactor := flag.Int("ef", 8, "edges per vertex")
	seed := flag.Int64("seed", 42, "graph seed")
	reps := flag.Int("reps", 1, "workload repetitions")
	cooling := flag.String("cooling", "commodity", "cooling: passive, low-end, commodity, high-end")
	series := flag.Bool("series", false, "print the PIM-rate/temperature time series")
	flag.Parse()

	pol, ok := policyNames[*policy]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policy)
		os.Exit(2)
	}
	cool, ok := coolingNames[*cooling]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown cooling %q\n", *cooling)
		os.Exit(2)
	}

	cfg := experiments.ScaledConfig(*scale)
	cfg.Cooling = cool

	fmt.Printf("generating LDBC-like RMAT graph: scale=%d ef=%d seed=%d\n", *scale, *edgeFactor, *seed)
	g := graph.GenRMAT(*scale, *edgeFactor, graph.LDBCLikeParams(), *seed)
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumV, g.NumE())

	w, err := kernels.NewSized(*workload, *reps)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("running %s under %v with %s...\n\n", w.Name(), pol, cool.Name)
	res, err := system.RunWorkload(w, pol, cfg, g)
	if err != nil {
		fmt.Fprintln(os.Stderr, "run failed:", err)
		os.Exit(1)
	}
	printResult(res)
	if *series {
		fmt.Println("\ntime series:")
		fmt.Printf("%-10s %-12s %-14s %-10s %s\n", "t(ms)", "PIM(op/ns)", "extBW", "peakDRAM", "pool")
		for _, s := range res.Series {
			fmt.Printf("%-10.2f %-12.2f %-14v %-10s %d\n",
				s.At.Milliseconds(), float64(s.PIMRate), s.ExtBW,
				experiments.FmtCelsius(s.PeakDRAM), s.PoolSize)
		}
	}
}

func printResult(r *system.Result) {
	fmt.Printf("workload:          %s\n", r.Workload)
	fmt.Printf("policy:            %v\n", r.Policy)
	fmt.Printf("cooling:           %s\n", r.Cooling)
	fmt.Printf("simulated runtime: %v  (%d kernel launches)\n", r.Runtime, r.Launches)
	fmt.Printf("avg PIM rate:      %v  (%d PIM ops)\n", r.AvgPIMRate, r.PIMOps)
	fmt.Printf("avg external BW:   %v\n", r.AvgExtBW)
	fmt.Printf("peak DRAM temp:    %s\n", experiments.FmtCelsius(r.PeakDRAM))
	fmt.Printf("thermal warnings:  %d observed, %d control updates\n", r.WarningsSeen, r.ControlUpdates)
	if r.InitialPoolSize >= 0 {
		fmt.Printf("throttle state:    %d -> %d\n", r.InitialPoolSize, r.FinalPoolSize)
	}
	g := r.GPU
	fmt.Printf("warp ops:          %d (divergence ratio %.2f)\n", g.WarpOps, g.DivergenceRatio())
	fmt.Printf("atomics:           %d PIM lanes, %d host lanes\n", g.PIMLaneOps, g.HostLaneOps)
	fmt.Printf("blocks:            %d PIM, %d non-PIM\n", g.PIMBlocks, g.NonPIMBlocks)
	if r.Shutdown {
		fmt.Println("STATUS:            THERMAL SHUTDOWN — the cube exceeded 105°C")
	} else if r.VerifyErr != nil {
		fmt.Printf("STATUS:            VERIFICATION FAILED: %v\n", r.VerifyErr)
	} else {
		fmt.Println("STATUS:            completed, results verified against sequential reference")
	}
}
