// Command coolpim-sim runs one graph workload on the simulated GPU+HMC
// platform under a chosen offloading policy and prints the run's
// statistics — the single-experiment front end to the full system model.
//
// With any of the telemetry flags set the run records the observability
// layer's outputs: -trace-out writes the structured event stream (JSONL,
// one typed event per line: thermal warnings, derating phase changes,
// token-pool resizes, offload decisions, link backpressure), -series-out
// writes the aligned time series as CSV, and -metrics-out dumps the
// metrics registry in Prometheus text format. A human-readable telemetry
// summary table is printed after the run statistics.
//
// The live observability plane adds: -spans-out (hierarchical span tree
// as JSONL), -trace-chrome (Chrome/Perfetto trace_event JSON — open in
// https://ui.perfetto.dev), -flight-out (flight-recorder ring dump; also
// written on panic or SIGQUIT), and -diag-addr, which serves /metrics,
// /healthz, /spans and /debug/pprof over HTTP while the run executes
// (-diag-hold keeps the server up after the run finishes).
//
// Example:
//
//	coolpim-sim -workload pagerank -policy coolpim-hw -scale 15 -cooling commodity \
//	    -trace-out trace.jsonl -metrics-out metrics.prom \
//	    -diag-addr 127.0.0.1:8787 -trace-chrome trace.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"coolpim/internal/core"
	"coolpim/internal/experiments"
	"coolpim/internal/graph"
	"coolpim/internal/kernels"
	"coolpim/internal/specflag"
	"coolpim/internal/system"
	"coolpim/internal/telemetry"
	"coolpim/internal/telemetry/diagserver"
	"coolpim/internal/units"
)

func main() {
	// Workload, graph, cooling, thermal-tier and network selection come
	// from the shared spec flag groups (see internal/specflag), so this
	// CLI accepts and rejects exactly the same run descriptions as the
	// campaign front ends and the coolpim-serve JSON API; the telemetry
	// export flags stay local.
	binder := specflag.New()
	binder.SingleRun(flag.CommandLine)
	binder.Cooling(flag.CommandLine)
	binder.Thermal(flag.CommandLine)
	binder.Network(flag.CommandLine)
	traceOut := flag.String("trace-out", "", "write the telemetry event trace as JSONL to this file")
	metricsOut := flag.String("metrics-out", "", "write the metrics registry in Prometheus text format to this file")
	seriesOut := flag.String("series-out", "", "write the telemetry time series as CSV to this file")
	sampleEvery := flag.Duration("sample-every", 100*time.Microsecond, "telemetry time-series sampling period (simulated time)")
	spansOut := flag.String("spans-out", "", "write the span tree as JSONL to this file")
	traceChrome := flag.String("trace-chrome", "", "write a Chrome/Perfetto trace_event JSON file (open in ui.perfetto.dev)")
	flightOut := flag.String("flight-out", "", "write the flight-recorder ring to this file (also dumped on panic or SIGQUIT)")
	diagAddr := flag.String("diag-addr", "", "serve live diagnostics over HTTP on this address (e.g. 127.0.0.1:8787 or 127.0.0.1:0)")
	diagHold := flag.Duration("diag-hold", 0, "keep the diagnostics server up this long after the run completes")
	flag.Parse()

	if *sampleEvery <= 0 {
		fatalf("-sample-every must be positive (got %v)", *sampleEvery)
	}

	spec, err := binder.Spec()
	if err != nil {
		fatalf("%v", err)
	}
	prof, err := spec.BuildProfile()
	if err != nil {
		fatalf("%v", err)
	}
	cfg := prof.Sys
	workload, policy := spec.Workloads[0], spec.Policies[0]
	pol, err := core.ParsePolicy(policy)
	if err != nil {
		fatalf("%v", err)
	}
	cool := cfg.Cooling

	var tel *telemetry.Telemetry
	if *traceOut != "" || *metricsOut != "" || *seriesOut != "" ||
		*spansOut != "" || *traceChrome != "" || *flightOut != "" || *diagAddr != "" {
		tel = telemetry.New()
		cfg.Telemetry = tel
		cfg.TelemetrySample = units.FromNanoseconds(float64(sampleEvery.Nanoseconds()))
		tel.Spans.SetWallClock(func() int64 { return time.Now().UnixNano() })
		tel.RunID = fmt.Sprintf("%s/%s", workload, policy)
	}
	if tel.Enabled() && (*flightOut != "" || *diagAddr != "") {
		tel.Flight = telemetry.NewFlightRecorder(0)
	}

	var diag *diagserver.Server
	if *diagAddr != "" {
		var err error
		diag, err = diagserver.New(*diagAddr)
		if err != nil {
			fatalf("diag: %v", err)
		}
		defer diag.Close()
		tel.Sink = diag
		fmt.Printf("diag: serving on http://%s (endpoints: /metrics /healthz /spans /debug/pprof)\n", diag.Addr())
	}

	// A wedged or crashing run should still ship its evidence: SIGQUIT
	// dumps the flight ring without killing the process state first, and
	// a panic dumps it before the stack unwinds past main.
	if tel.Enabled() && tel.Flight != nil {
		flightPath := *flightOut
		if flightPath == "" {
			flightPath = "coolpim-sim.flight.jsonl"
		}
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, syscall.SIGQUIT)
		go func() {
			for range quit {
				if err := tel.Flight.DumpFile(flightPath); err == nil {
					fmt.Fprintf(os.Stderr, "flight: dumped ring to %s (SIGQUIT)\n", flightPath)
				}
			}
		}()
		defer func() {
			if r := recover(); r != nil {
				if err := tel.Flight.DumpFile(flightPath); err == nil {
					fmt.Fprintf(os.Stderr, "flight: dumped ring to %s (panic)\n", flightPath)
				}
				panic(r)
			}
		}()
	}

	fmt.Printf("generating LDBC-like RMAT graph: scale=%d ef=%d seed=%d\n", prof.Scale, prof.EdgeFactor, prof.Seed)
	g := graph.GenRMAT(prof.Scale, prof.EdgeFactor, graph.LDBCLikeParams(), prof.Seed)
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumV, g.NumE())

	ws := make([]kernels.Workload, cfg.Net.Cubes)
	for i := range ws {
		w, err := kernels.NewSized(workload, prof.Reps)
		if err != nil {
			fatalf("%v", err)
		}
		ws[i] = w
	}
	if cfg.Net.Enabled() {
		fmt.Printf("running %s under %v with %s on %d %s-linked cubes...\n\n",
			ws[0].Name(), pol, cool.Name, cfg.Net.Cubes, cfg.Net.Topology)
	} else {
		fmt.Printf("running %s under %v with %s...\n\n", ws[0].Name(), pol, cool.Name)
	}
	res, err := system.RunWorkloads(ws, pol, cfg, g)
	if err != nil {
		fmt.Fprintln(os.Stderr, "run failed:", err)
		os.Exit(1)
	}
	printResult(res)

	if tel.Enabled() {
		fmt.Println("\ntelemetry summary:")
		tel.WriteSummary(os.Stdout)
		writeExport(*traceOut, "trace", tel.Tracer.WriteJSONL)
		writeExport(*metricsOut, "metrics", tel.Registry.WritePrometheus)
		writeExport(*seriesOut, "series", tel.Series.WriteCSV)
		writeExport(*spansOut, "spans", tel.Spans.WriteJSONL)
		writeExport(*traceChrome, "chrome trace", func(w io.Writer) error {
			return telemetry.WriteChromeTrace(w, tel.Spans.Export(), tel.Tracer.Events())
		})
		if *flightOut != "" {
			writeExport(*flightOut, "flight ring", tel.Flight.WriteJSONL)
		}
	}

	if diag != nil && *diagHold > 0 {
		fmt.Printf("diag: holding server for %v (ctrl-c to stop early)\n", *diagHold)
		hold := time.NewTimer(*diagHold)
		intr := make(chan os.Signal, 1)
		signal.Notify(intr, os.Interrupt)
		select {
		case <-hold.C:
		case <-intr:
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

// writeExport dumps one telemetry exporter to path (no-op when the flag
// was left empty).
func writeExport(path, what string, write func(w io.Writer) error) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "writing %s: %v\n", what, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := write(f); err != nil {
		fmt.Fprintf(os.Stderr, "writing %s: %v\n", what, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s to %s\n", what, path)
}

func printResult(r *system.Result) {
	fmt.Printf("workload:          %s\n", r.Workload)
	fmt.Printf("policy:            %v\n", r.Policy)
	fmt.Printf("cooling:           %s\n", r.Cooling)
	fmt.Printf("simulated runtime: %v  (%d kernel launches)\n", r.Runtime, r.Launches)
	fmt.Printf("avg PIM rate:      %v  (%d PIM ops)\n", r.AvgPIMRate, r.PIMOps)
	fmt.Printf("avg external BW:   %v\n", r.AvgExtBW)
	fmt.Printf("peak DRAM temp:    %s\n", experiments.FmtCelsius(r.PeakDRAM))
	fmt.Printf("thermal warnings:  %d observed, %d control updates\n", r.WarningsSeen, r.ControlUpdates)
	if r.InitialPoolSize >= 0 {
		fmt.Printf("throttle state:    %d -> %d\n", r.InitialPoolSize, r.FinalPoolSize)
	}
	g := r.GPU
	fmt.Printf("warp ops:          %d (divergence ratio %.2f)\n", g.WarpOps, g.DivergenceRatio())
	fmt.Printf("atomics:           %d PIM lanes, %d host lanes\n", g.PIMLaneOps, g.HostLaneOps)
	fmt.Printf("blocks:            %d PIM, %d non-PIM\n", g.PIMBlocks, g.NonPIMBlocks)
	if len(r.PerCube) > 0 {
		fmt.Printf("\nper-cube results (%d cubes):\n", len(r.PerCube))
		fmt.Printf("%-6s %-14s %-9s %-10s %-12s %-9s %-6s %-9s\n",
			"cube", "runtime", "launches", "pim ops", "ext bytes", "peak(°C)", "warns", "shutdown")
		for _, pc := range r.PerCube {
			fmt.Printf("%-6d %-14v %-9d %-10d %-12d %-9.1f %-6d %-9v\n",
				pc.Node, pc.Runtime, pc.Launches, pc.PIMOps, pc.ExtDataBytes,
				float64(pc.PeakDRAM), pc.WarningsSeen, pc.Shutdown)
		}
	}
	if len(r.Links) > 0 {
		fmt.Println("\ninter-cube link FLIT occupancy:")
		fmt.Printf("%-8s %-10s %-10s %-12s %-14s\n", "link", "packets", "flits", "bytes", "avg queue")
		for _, ls := range r.Links {
			avgQ := units.Time(0)
			if ls.Counters.Packets > 0 {
				avgQ = ls.QueueSum / units.Time(ls.Counters.Packets)
			}
			fmt.Printf("%d->%-5d %-10d %-10d %-12d %-14v\n",
				ls.Src, ls.Dst, ls.Counters.Packets, ls.Counters.Flits, ls.Counters.Bytes, avgQ)
		}
	}
	if r.Shutdown {
		fmt.Println("STATUS:            THERMAL SHUTDOWN — the cube exceeded 105°C")
	} else if r.VerifyErr != nil {
		fmt.Printf("STATUS:            VERIFICATION FAILED: %v\n", r.VerifyErr)
	} else {
		fmt.Println("STATUS:            completed, results verified against sequential reference")
	}
}
