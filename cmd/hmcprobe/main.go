// Command hmcprobe replays the paper's HMC 1.1 prototype study
// (Section III-A) on the thermal model: it sweeps link bandwidth under a
// chosen heat sink, reporting surface/die temperatures, operating phase,
// and the point at which the passive-cooled prototype thermally shuts
// down — the observation that motivates CoolPIM.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"coolpim/internal/dram"
	"coolpim/internal/power"
	"coolpim/internal/thermal"
	"coolpim/internal/units"
)

func main() {
	coolingName := flag.String("cooling", "all", "one of "+strings.Join(thermal.CoolingNames(), ", ")+", or all")
	maxBW := flag.Float64("maxbw", 60, "peak link data bandwidth to sweep to (GB/s)")
	steps := flag.Int("steps", 7, "sweep steps")
	flag.Parse()

	if *maxBW <= 0 {
		fmt.Fprintf(os.Stderr, "-maxbw must be positive (got %g)\n", *maxBW)
		os.Exit(2)
	}
	if *steps < 2 {
		fmt.Fprintf(os.Stderr, "-steps must be at least 2 (got %d)\n", *steps)
		os.Exit(2)
	}

	var selected []thermal.Cooling
	if *coolingName == "all" {
		// The prototype study's three heat sinks (the paper's Fig. 1).
		selected = []thermal.Cooling{thermal.Passive, thermal.LowEndActive, thermal.HighEndActive}
	} else {
		c, err := thermal.ParseCooling(*coolingName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		selected = []thermal.Cooling{c}
	}

	fmt.Println("HMC 1.1 prototype thermal probe (4GB cube, 2 half-width links)")
	fmt.Println()
	for _, cool := range selected {
		fmt.Printf("== %s (%v)\n", cool.Name, cool.SinkResistance)
		fmt.Printf("%-12s %-10s %-10s %-22s\n", "BW (GB/s)", "surface", "die", "state")
		for i := 0; i < *steps; i++ {
			bw := units.GBps(*maxBW * float64(i) / float64(*steps-1))
			b := power.HMC11().Compute(power.Activity{ExternalBW: bw, InternalRegularBW: bw})
			m := thermal.New(thermal.HMC11Stack(), cool)
			m.AddLayerPower(0, b.LogicDie())
			per := b.DRAMStack() / units.Watt(float64(thermal.HMC11Stack().DRAMDies))
			for l := 1; l <= thermal.HMC11Stack().DRAMDies; l++ {
				m.AddLayerPower(l, per)
			}
			if m.SolveSteady() < 0 {
				fmt.Fprintf(os.Stderr, "hmcprobe: steady solve did not converge (%s, %.1f GB/s)\n",
					cool.Name, bw.GBps())
				os.Exit(1)
			}
			state := "ok"
			switch {
			case m.Peak() > 94:
				state = "THERMAL SHUTDOWN (data lost, ~20s recovery)"
			case dram.PhaseForTemp(m.PeakDRAM()) != dram.PhaseNormal:
				state = "extended range (derated)"
			}
			fmt.Printf("%-12.1f %-10.1f %-10.1f %-22s\n",
				bw.GBps(), float64(m.EstimatedSurface()), float64(m.Peak()), state)
		}
		fmt.Println()
	}
	fmt.Println("The paper's observation: with a passive heat sink the prototype cannot")
	fmt.Println("sustain peak bandwidth — it shuts down near an 85°C surface temperature.")
}
