// Command hmcprobe replays the paper's HMC 1.1 prototype study
// (Section III-A) on the thermal model: it sweeps link bandwidth under a
// chosen heat sink, reporting surface/die temperatures, operating phase,
// and the point at which the passive-cooled prototype thermally shuts
// down — the observation that motivates CoolPIM.
//
// With -cubes > 1 it instead probes the multi-cube interconnect: it
// wires N cubes into the selected topology, drives a deterministic
// page-striped read/write/PIM mix from every node, and reports per-cube
// counters and per-link FLIT occupancy.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"coolpim/internal/dram"
	"coolpim/internal/flit"
	"coolpim/internal/hmc"
	"coolpim/internal/mem"
	"coolpim/internal/power"
	"coolpim/internal/sim"
	"coolpim/internal/thermal"
	"coolpim/internal/units"
)

func main() {
	coolingName := flag.String("cooling", "all", "one of "+strings.Join(thermal.CoolingNames(), ", ")+", or all")
	maxBW := flag.Float64("maxbw", 60, "peak link data bandwidth to sweep to (GB/s)")
	steps := flag.Int("steps", 7, "sweep steps")
	cubes := flag.Int("cubes", 1, "probe a multi-cube network with this many cubes instead of the thermal sweep")
	topology := flag.String("topology", "chain", "inter-cube link topology: "+strings.Join(hmc.TopologyNames(), ", "))
	linkLatency := flag.Duration("link-latency", 0, "per-hop inter-cube link latency, simulated time (0 = built-in default)")
	shards := flag.Int("shards", 0, "engine shards: 0 = one per cube, 1 = serial reference")
	reqs := flag.Int("reqs", 4096, "requests submitted per cube in the network probe")
	flag.Parse()

	if *cubes > 1 {
		os.Exit(networkProbe(*cubes, *topology, *linkLatency, *shards, *reqs))
	}

	if *maxBW <= 0 {
		fmt.Fprintf(os.Stderr, "-maxbw must be positive (got %g)\n", *maxBW)
		os.Exit(2)
	}
	if *steps < 2 {
		fmt.Fprintf(os.Stderr, "-steps must be at least 2 (got %d)\n", *steps)
		os.Exit(2)
	}

	var selected []thermal.Cooling
	if *coolingName == "all" {
		// The prototype study's three heat sinks (the paper's Fig. 1).
		selected = []thermal.Cooling{thermal.Passive, thermal.LowEndActive, thermal.HighEndActive}
	} else {
		c, err := thermal.ParseCooling(*coolingName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		selected = []thermal.Cooling{c}
	}

	fmt.Println("HMC 1.1 prototype thermal probe (4GB cube, 2 half-width links)")
	fmt.Println()
	for _, cool := range selected {
		fmt.Printf("== %s (%v)\n", cool.Name, cool.SinkResistance)
		fmt.Printf("%-12s %-10s %-10s %-22s\n", "BW (GB/s)", "surface", "die", "state")
		for i := 0; i < *steps; i++ {
			bw := units.GBps(*maxBW * float64(i) / float64(*steps-1))
			b := power.HMC11().Compute(power.Activity{ExternalBW: bw, InternalRegularBW: bw})
			m := thermal.New(thermal.HMC11Stack(), cool)
			m.AddLayerPower(0, b.LogicDie())
			per := b.DRAMStack() / units.Watt(float64(thermal.HMC11Stack().DRAMDies))
			for l := 1; l <= thermal.HMC11Stack().DRAMDies; l++ {
				m.AddLayerPower(l, per)
			}
			if m.SolveSteady() < 0 {
				fmt.Fprintf(os.Stderr, "hmcprobe: steady solve did not converge (%s, %.1f GB/s)\n",
					cool.Name, bw.GBps())
				os.Exit(1)
			}
			state := "ok"
			switch {
			case m.Peak() > 94:
				state = "THERMAL SHUTDOWN (data lost, ~20s recovery)"
			case dram.PhaseForTemp(m.PeakDRAM()) != dram.PhaseNormal:
				state = "extended range (derated)"
			}
			fmt.Printf("%-12.1f %-10.1f %-10.1f %-22s\n",
				bw.GBps(), float64(m.EstimatedSurface()), float64(m.Peak()), state)
		}
		fmt.Println()
	}
	fmt.Println("The paper's observation: with a passive heat sink the prototype cannot")
	fmt.Println("sustain peak bandwidth — it shuts down near an 85°C surface temperature.")
}

// networkProbe wires a multi-cube network and drives a deterministic
// request mix from every node: each cube submits `reqs` transactions
// (cycling read / write / PIM-add) at page-striped addresses, so a
// fixed share of the traffic crosses the inter-cube links. It reports
// per-cube counters and the FLIT occupancy of every directed link.
func networkProbe(cubes int, topology string, linkLat time.Duration, shards, reqs int) int {
	cfg, err := hmc.FlagConfig(cubes, topology,
		units.FromNanoseconds(float64(linkLat.Nanoseconds())), shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if reqs <= 0 {
		fmt.Fprintf(os.Stderr, "-reqs must be positive (got %d)\n", reqs)
		return 2
	}

	cl, err := sim.NewCluster(cfg.LinkLatency, cfg.Cubes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	cl.SetShards(cfg.Shards)
	net, err := hmc.NewNetwork(cl, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	const spaceBytes = 1 << 20
	for i := 0; i < cfg.Cubes; i++ {
		space := mem.NewSpace(spaceBytes)
		net.AttachNode(i, hmc.New(cl.Domain(i), space, hmc.DefaultConfig()), space)
	}

	// Each done callback runs on its source node's domain, so the
	// per-node tallies need no synchronization.
	type tally struct {
		delivered int
		latSum    units.Time
	}
	tallies := make([]tally, cfg.Cubes)
	const spacing = 50 * units.Nanosecond
	for node := 0; node < cfg.Cubes; node++ {
		node := node
		state := uint64(node)*0x9E3779B97F4A7C15 + 0xDA3E39CB94B95BDB
		for j := 0; j < reqs; j++ {
			// SplitMix64-style step: deterministic, node-seeded.
			state += 0x9E3779B97F4A7C15
			mix := state
			mix = (mix ^ (mix >> 30)) * 0xBF58476D1CE4E5B9
			mix = (mix ^ (mix >> 27)) * 0x94D049BB133111EB
			mix ^= mix >> 31
			req := flit.Request{Addr: (mix % (spaceBytes / 64)) * 64}
			switch j % 3 {
			case 0:
				req.Cmd = flit.CmdRead64
			case 1:
				req.Cmd = flit.CmdWrite64
			default:
				req.Cmd = flit.CmdPIMSignedAdd
				req.Imm = 1
			}
			at := units.Time(j+1) * spacing
			cl.Domain(node).At(at, func(now units.Time) {
				net.Submit(node, now, req, func(_ flit.Response, done units.Time) {
					tallies[node].delivered++
					tallies[node].latSum += done - now
				})
			})
		}
	}
	end := cl.RunUntil(units.Time(reqs+1)*spacing + 100*units.Microsecond)

	fmt.Printf("multi-cube network probe: %d cubes, %s topology, %v links (%g GB/s), %d reqs/cube\n",
		cfg.Cubes, cfg.Topology, cfg.LinkLatency, cfg.LinkGBps, reqs)
	fmt.Printf("drained at %v\n\n", end)

	fmt.Println("per-cube counters:")
	fmt.Printf("%-5s %-8s %-8s %-8s %-10s %-11s %-11s %-12s\n",
		"cube", "reads", "writes", "pimops", "req-flits", "resp-flits", "ext-bytes", "avg-lat")
	for i := 0; i < cfg.Cubes; i++ {
		c := net.Node(i).Counters()
		tl := tallies[i]
		if tl.delivered != reqs {
			fmt.Fprintf(os.Stderr, "cube %d: %d of %d requests delivered\n", i, tl.delivered, reqs)
			return 1
		}
		avg := tl.latSum / units.Time(tl.delivered)
		fmt.Printf("%-5d %-8d %-8d %-8d %-10d %-11d %-11d %-12v\n",
			i, c.Reads, c.Writes, c.PIMOps, c.ReqFlits, c.RespFlits, c.ExtDataBytes, avg)
	}

	fmt.Println("\ninter-cube link FLIT occupancy:")
	fmt.Printf("%-8s %-9s %-9s %-11s %-14s\n", "link", "packets", "flits", "bytes", "avg-queue")
	for _, ls := range net.Links() {
		avgQ := units.Time(0)
		if ls.Counters.Packets > 0 {
			avgQ = ls.QueueSum / units.Time(ls.Counters.Packets)
		}
		fmt.Printf("%d->%-5d %-9d %-9d %-11d %-14v\n",
			ls.Src, ls.Dst, ls.Counters.Packets, ls.Counters.Flits, ls.Counters.Bytes, avgQ)
	}
	return 0
}
