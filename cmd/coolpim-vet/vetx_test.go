package main

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"coolpim/internal/analyzers"
	"coolpim/internal/analyzers/driver"
	"coolpim/internal/analyzers/facts"
	"coolpim/internal/analyzers/hotalloc"
)

// TestVetxRoundTrip pins the unitchecker protocol's fact file format:
// writeVetx produces a deterministic file that decodes into an
// equivalent store whose re-encoding is byte-identical.
func TestVetxRoundTrip(t *testing.T) {
	const src = `package p
func Clean() int { return 1 }
func Alloc(n int) []int { return make([]int, n) }
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := (&types.Config{}).Check("coolpim/internal/p", fset, []*ast.File{f}, nil)
	if err != nil {
		t.Fatal(err)
	}

	suite := analyzers.All()
	store := facts.NewStore(suite)
	store.Export(hotalloc.Name, pkg.Scope().Lookup("Alloc"),
		&hotalloc.Fact{Allocates: true, Reason: "make allocates at p.go:3"})
	store.Export(hotalloc.Name, pkg.Scope().Lookup("Clean"), &hotalloc.Fact{})

	dir := t.TempDir()
	out1 := filepath.Join(dir, "p1.vetx")
	writeVetx(&vetConfig{VetxOutput: out1}, store, "coolpim/internal/p")
	data1, err := os.ReadFile(out1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data1), facts.Header+"\n") {
		t.Fatalf("vetx file missing header:\n%s", data1)
	}

	store2 := facts.NewStore(suite)
	if err := store2.DecodePackage("coolpim/internal/p", data1); err != nil {
		t.Fatal(err)
	}
	out2 := filepath.Join(dir, "p2.vetx")
	writeVetx(&vetConfig{VetxOutput: out2}, store2, "coolpim/internal/p")
	data2, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data1, data2) {
		t.Errorf("vetx round trip not byte-identical:\n--- first\n%s--- second\n%s", data1, data2)
	}

	// The imported fact carries the exported content.
	var got hotalloc.Fact
	if !store2.Import(hotalloc.Name, pkg.Scope().Lookup("Alloc"), &got) {
		t.Fatal("Alloc fact missing after round trip")
	}
	if !got.Allocates || got.Reason != "make allocates at p.go:3" {
		t.Errorf("Alloc fact = %+v", got)
	}
}

// TestGithubAnnotation pins the workflow-command format, including
// newline escaping.
func TestGithubAnnotation(t *testing.T) {
	f := driver.Finding{
		Analyzer: "hotalloc",
		Pos:      token.Position{Filename: "internal/sim/sim.go", Line: 12, Column: 3},
		Message:  "make allocates\nsecond line",
	}
	got := githubAnnotation(f)
	want := "::error file=internal/sim/sim.go,line=12,col=3,title=coolpim-vet hotalloc::make allocates%0Asecond line"
	if got != want {
		t.Errorf("annotation = %q, want %q", got, want)
	}
}
