package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"runtime"
	"strings"

	"coolpim/internal/analyzers"
	"coolpim/internal/analyzers/analysis"
	"coolpim/internal/analyzers/driver"
)

// vetConfig mirrors the JSON configuration the go command writes for
// each package when driving a -vettool (the unitchecker protocol of
// golang.org/x/tools/go/analysis/unitchecker).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnitchecker analyzes the single package described by cfgFile and
// exits: 0 when clean, 1 on diagnostics (printed to stderr in the
// standard file:line:col format go vet surfaces).
func runUnitchecker(cfgFile string, suite []*analysis.Analyzer) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("parse %s: %v", cfgFile, err)
	}
	// The go command runs the tool over the entire import graph so
	// fact-based analyzers can propagate; this suite is fact-free and
	// scoped to the module, so everything else returns immediately.
	// The (empty) facts file must still be written — its absence fails
	// the toolchain's cache bookkeeping.
	importPath := cfg.ImportPath
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		importPath = importPath[:i] // "pkg [pkg.test]" test variant
	}
	inScope := importPath == "coolpim" || strings.HasPrefix(importPath, "coolpim/")
	if inScope && !cfg.VetxOnly {
		if n := check(cfg, suite); n > 0 {
			writeVetx(cfg)
			os.Exit(1)
		}
	}
	writeVetx(cfg)
}

func writeVetx(cfg *vetConfig) {
	if cfg.VetxOutput == "" {
		return
	}
	if err := os.WriteFile(cfg.VetxOutput, []byte("coolpim-vet: no facts\n"), 0o666); err != nil {
		log.Fatal(err)
	}
}

// check parses and type-checks the package from cfg (imports resolve
// through the export data the toolchain supplies in PackageFile), runs
// the suite, prints findings, and returns their count.
func check(cfg *vetConfig, suite []*analysis.Analyzer) int {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			log.Fatalf("parse: %v", err)
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	tcfg := &types.Config{
		Importer:  importer.ForCompiler(fset, "gc", lookup),
		GoVersion: strings.TrimSuffix(cfg.GoVersion, " // indirect"),
		Sizes:     types.SizesFor("gc", build()),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		log.Fatalf("typecheck %s: %v", cfg.ImportPath, err)
	}
	findings, err := driver.Run(driver.Unit{Fset: fset, Files: files, Pkg: pkg, Info: info},
		suite, analyzers.Names())
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	return len(findings)
}

func build() string {
	if arch := os.Getenv("GOARCH"); arch != "" {
		return arch
	}
	return runtime.GOARCH
}
