package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"runtime"
	"strings"

	"coolpim/internal/analyzers"
	"coolpim/internal/analyzers/analysis"
	"coolpim/internal/analyzers/driver"
	"coolpim/internal/analyzers/facts"
)

// vetConfig mirrors the JSON configuration the go command writes for
// each package when driving a -vettool (the unitchecker protocol of
// golang.org/x/tools/go/analysis/unitchecker).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnitchecker analyzes the single package described by cfgFile and
// exits: 0 when clean, 1 on diagnostics (printed to stderr in the
// standard file:line:col format go vet surfaces). Facts read from the
// dependency vetx files in PackageVetx feed the cross-package
// analyzers, and the facts this package exports are serialized to
// VetxOutput — deterministically, so the toolchain's cache stays
// byte-stable.
func runUnitchecker(cfgFile string, suite []*analysis.Analyzer, out outputOptions) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("parse %s: %v", cfgFile, err)
	}
	importPath := cfg.ImportPath
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		importPath = importPath[:i] // "pkg [pkg.test]" test variant
	}

	store := facts.NewStore(suite)
	for path, file := range cfg.PackageVetx {
		vetx, err := os.ReadFile(file)
		if err != nil {
			log.Fatalf("read facts for %s: %v", path, err)
		}
		if err := store.DecodePackage(path, vetx); err != nil {
			log.Fatal(err)
		}
	}

	// Out-of-scope packages (stdlib, vendored deps) are never analyzed,
	// but must still emit a (header-only) facts file for the toolchain's
	// cache bookkeeping. In-scope packages are analyzed even on
	// VetxOnly runs — dependents need their facts — but only
	// diagnostic-bearing runs print or fail.
	inScope := importPath == "coolpim" || strings.HasPrefix(importPath, "coolpim/")
	var findings []driver.Finding
	if inScope {
		findings = check(cfg, suite, store)
	}
	writeVetx(cfg, store, importPath)
	if cfg.VetxOnly {
		return
	}
	if out.jsonOut {
		emitVetJSON(cfg.ID, findings)
		return // go vet -json collects diagnostics itself; exit 0
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
		if out.github {
			fmt.Fprintln(os.Stderr, githubAnnotation(f))
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// writeVetx serializes the package's facts. The encoding is
// deterministic (sorted records under a fixed header), so identical
// facts always produce identical bytes.
func writeVetx(cfg *vetConfig, store *facts.Store, importPath string) {
	if cfg.VetxOutput == "" {
		return
	}
	data, err := store.EncodePackage(importPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
		log.Fatal(err)
	}
}

// emitVetJSON prints findings in the shape `go vet -json` expects from
// a vettool: {"pkgID": {"analyzer": [{posn, message}]}}.
func emitVetJSON(pkgID string, findings []driver.Finding) {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := make(map[string][]jsonDiag)
	for _, f := range findings {
		byAnalyzer[f.Analyzer] = append(byAnalyzer[f.Analyzer], jsonDiag{
			Posn:    f.Pos.String(),
			Message: f.Message,
		})
	}
	out := map[string]map[string][]jsonDiag{pkgID: byAnalyzer}
	data, err := json.MarshalIndent(out, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
	os.Stdout.Write([]byte("\n"))
}

// check parses and type-checks the package from cfg (imports resolve
// through the export data the toolchain supplies in PackageFile), runs
// the suite against the shared fact store, and returns the findings.
func check(cfg *vetConfig, suite []*analysis.Analyzer, store *facts.Store) []driver.Finding {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil
			}
			log.Fatalf("parse: %v", err)
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	tcfg := &types.Config{
		Importer:  importer.ForCompiler(fset, "gc", lookup),
		GoVersion: strings.TrimSuffix(cfg.GoVersion, " // indirect"),
		Sizes:     types.SizesFor("gc", build()),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil
		}
		log.Fatalf("typecheck %s: %v", cfg.ImportPath, err)
	}
	findings, err := driver.RunOpts(driver.Unit{Fset: fset, Files: files, Pkg: pkg, Info: info},
		suite, analyzers.Names(), driver.Options{Facts: store})
	if err != nil {
		log.Fatal(err)
	}
	return findings
}

func build() string {
	if arch := os.Getenv("GOARCH"); arch != "" {
		return arch
	}
	return runtime.GOARCH
}
