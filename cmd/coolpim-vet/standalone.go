package main

import (
	"fmt"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"strings"

	"coolpim/internal/analyzers"
	"coolpim/internal/analyzers/analysis"
	"coolpim/internal/analyzers/driver"
	"coolpim/internal/analyzers/load"
)

// runStandalone type-checks packages from source (no toolchain driver)
// and analyzes them. With no arguments it analyzes every package under
// the enclosing module; arguments are package directories ("./..."
// recurses from that root). Only non-test files are loaded — the
// analyzers skip _test.go files anyway, and go vet mode covers test
// compilation units.
func runStandalone(args []string, suite []*analysis.Analyzer) {
	loader, err := load.NewLoader(".")
	if err != nil {
		log.Fatal(err)
	}
	var dirs []string
	if len(args) == 0 {
		args = []string{"./..."}
	}
	for _, arg := range args {
		if rest, ok := strings.CutSuffix(arg, "..."); ok {
			root := filepath.Clean(rest)
			if root == "" || root == "." {
				root = loader.ModRoot()
			}
			sub, err := packageDirs(root)
			if err != nil {
				log.Fatal(err)
			}
			dirs = append(dirs, sub...)
			continue
		}
		dirs = append(dirs, filepath.Clean(arg))
	}
	total := 0
	for _, dir := range dirs {
		total += checkDir(loader, dir, suite)
	}
	if total > 0 {
		os.Exit(1)
	}
}

// packageDirs lists directories under root containing buildable Go
// files, skipping testdata, hidden and tool-output directories.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == "bin" || (strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

func checkDir(loader *load.Loader, dir string, suite []*analysis.Analyzer) int {
	abs, err := filepath.Abs(dir)
	if err != nil {
		log.Fatal(err)
	}
	rel, err := filepath.Rel(loader.ModRoot(), abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		log.Fatalf("%s is outside module %s", dir, loader.ModRoot())
	}
	importPath := loader.ModPath()
	if rel != "." {
		importPath += "/" + filepath.ToSlash(rel)
	}
	pkg, err := loader.Load(importPath)
	if err != nil {
		log.Fatal(err)
	}
	findings, err := driver.Run(driver.Unit{
		Fset:  loader.Fset,
		Files: pkg.Files,
		Pkg:   pkg.Types,
		Info:  pkg.Info,
	}, suite, analyzers.Names())
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	return len(findings)
}
