package main

import (
	"encoding/json"
	"fmt"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"coolpim/internal/analyzers"
	"coolpim/internal/analyzers/analysis"
	"coolpim/internal/analyzers/driver"
	"coolpim/internal/analyzers/facts"
	"coolpim/internal/analyzers/load"
)

// runStandalone type-checks packages from source (no toolchain driver)
// and analyzes them. With no arguments it analyzes every package under
// the enclosing module; arguments are package directories ("./..."
// recurses from that root). Only non-test files are loaded — the
// analyzers skip _test.go files anyway, and go vet mode covers test
// compilation units.
//
// Packages are analyzed in dependency order through a shared fact
// store: before a package runs, its in-module imports run first (once),
// so cross-package analyzers see the same facts the unitchecker
// protocol would deliver.
func runStandalone(args []string, suite []*analysis.Analyzer, out outputOptions) {
	loader, err := load.NewLoader(".")
	if err != nil {
		log.Fatal(err)
	}
	var dirs []string
	if len(args) == 0 {
		args = []string{"./..."}
	}
	for _, arg := range args {
		if rest, ok := strings.CutSuffix(arg, "..."); ok {
			root := filepath.Clean(rest)
			if root == "" || root == "." {
				root = loader.ModRoot()
			}
			sub, err := packageDirs(root)
			if err != nil {
				log.Fatal(err)
			}
			dirs = append(dirs, sub...)
			continue
		}
		dirs = append(dirs, filepath.Clean(arg))
	}
	s := &sweep{
		loader: loader,
		suite:  suite,
		store:  facts.NewStore(suite),
		done:   make(map[string]bool),
	}
	for _, dir := range dirs {
		s.analyze(importPathFor(loader, dir))
	}
	sort.Slice(s.findings, func(i, j int) bool {
		a, b := s.findings[i], s.findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	s.emit(out)
	if len(s.findings) > 0 && !out.jsonOut {
		os.Exit(1)
	}
}

// packageDirs lists directories under root containing buildable Go
// files, skipping testdata, hidden and tool-output directories.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == "bin" || (strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

// importPathFor maps a directory to its import path within the module.
func importPathFor(loader *load.Loader, dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		log.Fatal(err)
	}
	rel, err := filepath.Rel(loader.ModRoot(), abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		log.Fatalf("%s is outside module %s", dir, loader.ModRoot())
	}
	if rel == "." {
		return loader.ModPath()
	}
	return loader.ModPath() + "/" + filepath.ToSlash(rel)
}

// sweep analyzes packages once each, dependencies first, accumulating
// findings and facts.
type sweep struct {
	loader   *load.Loader
	suite    []*analysis.Analyzer
	store    *facts.Store
	done     map[string]bool
	findings []driver.Finding
}

// analyze runs the suite over importPath after its in-module imports.
// Dependencies pulled in only for facts are analyzed identically —
// their findings count too, since a dirty dependency is just as much a
// lint failure.
func (s *sweep) analyze(importPath string) {
	if s.done[importPath] {
		return
	}
	s.done[importPath] = true
	pkg, err := s.loader.Load(importPath)
	if err != nil {
		log.Fatal(err)
	}
	modPrefix := s.loader.ModPath() + "/"
	for _, imp := range pkg.Types.Imports() {
		if imp.Path() == s.loader.ModPath() || strings.HasPrefix(imp.Path(), modPrefix) {
			s.analyze(imp.Path())
		}
	}
	findings, err := driver.RunOpts(driver.Unit{
		Fset:  s.loader.Fset,
		Files: pkg.Files,
		Pkg:   pkg.Types,
		Info:  pkg.Info,
	}, s.suite, analyzers.Names(), driver.Options{Facts: s.store})
	if err != nil {
		log.Fatal(err)
	}
	s.findings = append(s.findings, findings...)
}

// jsonFinding is the -json record shape: one flat object per
// diagnostic, emitted as a sorted array for deterministic output.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func (s *sweep) emit(out outputOptions) {
	if out.jsonOut {
		recs := make([]jsonFinding, 0, len(s.findings))
		for _, f := range s.findings {
			recs = append(recs, jsonFinding{
				File:     relPath(f.Pos.Filename),
				Line:     f.Pos.Line,
				Col:      f.Pos.Column,
				Analyzer: f.Analyzer,
				Message:  f.Message,
			})
		}
		data, err := json.MarshalIndent(recs, "", "\t")
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(data)
		os.Stdout.Write([]byte("\n"))
		if len(s.findings) > 0 {
			os.Exit(1)
		}
		return
	}
	for _, f := range s.findings {
		fmt.Fprintln(os.Stderr, f)
		if out.github {
			fmt.Fprintln(os.Stderr, githubAnnotation(f))
		}
	}
}

// relPath renders a finding path relative to the working directory when
// possible, which is what both humans and GitHub annotations want.
func relPath(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(wd, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}

// githubAnnotation renders a finding as a GitHub Actions workflow
// command, which the Actions runner turns into an inline PR annotation.
func githubAnnotation(f driver.Finding) string {
	msg := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A").Replace(f.Message)
	return fmt.Sprintf("::error file=%s,line=%d,col=%d,title=coolpim-vet %s::%s",
		relPath(f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Analyzer, msg)
}
