// Command coolpim-vet is the multichecker for the project's analyzer
// suite (internal/analyzers): determinism, unitsafety, telemetrysafe,
// eventhygiene, hotalloc and lockcheck, plus validation of
// //coolpim:allow directives (including stale-directive detection).
//
// It runs in two modes:
//
//	go vet -vettool=$(pwd)/bin/coolpim-vet ./...        # toolchain-driven
//	coolpim-vet [-only name[,name]] [-json] [dir ...]   # standalone
//
// Under go vet the toolchain hands the tool one JSON config per package
// with export data for its imports (the vettool protocol); cross-package
// facts ride the protocol's vetx files. Standalone mode type-checks the
// module from source, analyzes packages in dependency order through a
// shared in-memory fact store, and defaults to every package under the
// enclosing module.
//
// Output: diagnostics default to file:line:col text on stderr with exit
// status 1. -json emits a deterministic JSON array on stdout instead
// (exit 0). -github — or the GITHUB_ACTIONS environment the Actions
// runner sets — additionally emits ::error workflow commands so CI
// findings become inline annotations.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"coolpim/internal/analyzers"
	"coolpim/internal/analyzers/analysis"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("coolpim-vet: ")

	enabled := make(map[string]*bool)
	for _, a := range analyzers.All() {
		enabled[a.Name] = flag.Bool(a.Name, true, "run the "+a.Name+" analyzer ("+firstSentence(a.Doc)+")")
	}
	only := flag.String("only", "", "comma-separated analyzer names to run, disabling the rest")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout instead of text on stderr")
	github := flag.Bool("github", false, "also emit GitHub Actions ::error annotations (auto-enabled under GITHUB_ACTIONS)")
	printflags := flag.Bool("flags", false, "print the tool's flags as JSON (go vet protocol)")
	flag.Var(versionFlag{}, "V", "print version and exit (go vet protocol)")
	flag.Usage = usage
	flag.Parse()

	if *printflags {
		printFlagsJSON()
		return
	}
	if *only != "" {
		for name := range enabled {
			*enabled[name] = false
		}
		for _, name := range strings.Split(*only, ",") {
			b, ok := enabled[strings.TrimSpace(name)]
			if !ok {
				log.Fatalf("-only: unknown analyzer %q (known: %v)", name, analyzers.Names())
			}
			*b = true
		}
	}
	var suite []*analysis.Analyzer
	for _, a := range analyzers.All() {
		if *enabled[a.Name] {
			suite = append(suite, a)
		}
	}

	out := outputOptions{
		jsonOut: *jsonOut,
		github:  *github || os.Getenv("GITHUB_ACTIONS") == "true",
	}
	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runUnitchecker(args[0], suite, out)
		return
	}
	runStandalone(args, suite, out)
}

// outputOptions selects how findings are rendered.
type outputOptions struct {
	// jsonOut emits machine-readable JSON on stdout instead of text.
	jsonOut bool
	// github additionally emits ::error workflow commands, which the
	// GitHub Actions runner turns into inline annotations.
	github bool
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: coolpim-vet [flags] [dir ...]\n")
	fmt.Fprintf(os.Stderr, "       go vet -vettool=$(pwd)/bin/coolpim-vet ./...\n\nanalyzers:\n")
	for _, a := range analyzers.All() {
		fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nflags:\n")
	flag.PrintDefaults()
}

func firstSentence(s string) string {
	if i := strings.IndexByte(s, ','); i > 0 {
		return s[:i]
	}
	return s
}

// printFlagsJSON implements the `-flags` handshake: go vet queries the
// tool for its flag set before forwarding command-line flags.
func printFlagsJSON() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// versionFlag implements `-V=full`, which the go command invokes to
// fingerprint the tool for build caching.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return false }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s", s)
	}
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.Sum256(data)
	fmt.Printf("%s version devel coolpim-vet buildID=%x\n", filepath.Base(os.Args[0]), h[:12])
	os.Exit(0)
	return nil
}
