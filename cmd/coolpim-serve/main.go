// Command coolpim-serve exposes the simulator as an HTTP/JSON service:
// POST a campaign spec, get the memoized result.
//
//	POST /v1/runs            submit a campaign (JSON CampaignSpec body).
//	                         Sync by default: the response is the result
//	                         document, with X-Cache: hit|miss. ?async=1
//	                         returns 202 + the run id immediately.
//	GET  /v1/runs/{id}       status document; ?watch=1 streams progress
//	                         events as JSONL until the run finishes.
//	GET  /metrics            Prometheus metrics (cache hit/miss/corrupt,
//	                         executions, admission queue depth, ...).
//	GET  /healthz            liveness probe.
//
// Results are memoized in a content-addressed on-disk cache keyed by
// the spec's cache key (execution knobs like -parallel excluded), so
// re-POSTing a completed campaign returns byte-identical results
// without re-simulating — across restarts too. Identical concurrent
// submissions share one execution (singleflight). -max-inflight bounds
// concurrent simulations; overflow queues per tenant (X-Tenant header)
// and drains round-robin, and past -max-queue the server answers 429
// with a Retry-After estimate.
//
// Example:
//
//	coolpim-serve -addr 127.0.0.1:8780 -cache-dir cache/ -ledger serve.jsonl
//	curl -s -X POST 127.0.0.1:8780/v1/runs \
//	    -d '{"profile":"quick","workloads":["dc"],"policies":["baseline","coolpim-hw"]}'
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"coolpim/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8780", "HTTP listen address (use :0 for an ephemeral port)")
	cacheDir := flag.String("cache-dir", "serve-cache", "result cache directory")
	ledgerPath := flag.String("ledger", "", "shared JSONL run ledger; completed cells are reused across campaigns and restarts")
	maxInflight := flag.Int("max-inflight", 2, "maximum concurrently executing campaigns")
	maxQueue := flag.Int("max-queue", 16, "maximum queued campaigns before rejecting with 429")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}

	srv, err := serve.New(serve.Config{
		CacheDir:    *cacheDir,
		LedgerPath:  *ledgerPath,
		MaxInflight: *maxInflight,
		MaxQueue:    *maxQueue,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// The address line goes to stdout deliberately: scripts (and the
	// serve-smoke harness) parse it to find an ephemeral port.
	fmt.Printf("coolpim-serve: listening on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-stop
		// In-flight sync responses get a grace period; the result cache
		// and ledger are already durable at this point.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
	}()
	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
