// Command coolpim-trace converts the simulator's JSONL telemetry
// exports into a Chrome/Perfetto trace_event JSON file, and provides
// two small helpers the observability smoke test is built on.
//
// Modes (exactly one):
//
//	coolpim-trace -events trace.jsonl [-spans spans.jsonl] -out trace.json
//	    Convert an event trace and/or span tree (as written by
//	    coolpim-sim -trace-out / -spans-out) into trace_event JSON.
//	    Open the result in https://ui.perfetto.dev or chrome://tracing.
//
//	coolpim-trace -check trace.json
//	    Validate that a file parses as a trace_event array: every entry
//	    must carry string "name" and "ph" fields and numeric "ts",
//	    "pid" and "tid" fields. Exit 0 when valid, 1 when not.
//
//	coolpim-trace -get http://addr/path
//	    Fetch a URL and copy the body to stdout (exit 1 on transport
//	    error or non-2xx status). Exists so the smoke test does not
//	    depend on curl being installed.
//
//	coolpim-trace -post http://addr/path -data '{...}' [-header K:V]
//	    POST a JSON body (-data @file reads it from a file) and copy the
//	    response body to stdout; response headers go to stderr with -v.
//	    The HTTP client side of the coolpim-serve smoke test.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"coolpim/internal/telemetry"
)

func main() {
	eventsPath := flag.String("events", "", "event trace JSONL (from coolpim-sim -trace-out)")
	spansPath := flag.String("spans", "", "span tree JSONL (from coolpim-sim -spans-out)")
	outPath := flag.String("out", "", "output trace_event JSON path (default stdout)")
	checkPath := flag.String("check", "", "validate a trace_event JSON file instead of converting")
	getURL := flag.String("get", "", "fetch a URL and copy the body to stdout instead of converting")
	postURL := flag.String("post", "", "POST -data to a URL and copy the response body to stdout")
	data := flag.String("data", "", "request body for -post (@file reads it from a file)")
	header := flag.String("header", "", "extra request header for -post, as Key:Value")
	verbose := flag.Bool("v", false, "with -post, print the response status and headers to stderr")
	flag.Parse()

	switch {
	case *postURL != "":
		if err := post(*postURL, *data, *header, *verbose); err != nil {
			fatalf("post %s: %v", *postURL, err)
		}
	case *getURL != "":
		if err := get(*getURL); err != nil {
			fatalf("get %s: %v", *getURL, err)
		}
	case *checkPath != "":
		n, err := check(*checkPath)
		if err != nil {
			fatalf("check %s: %v", *checkPath, err)
		}
		fmt.Printf("ok: %d trace events\n", n)
	case *eventsPath != "" || *spansPath != "":
		if err := convert(*eventsPath, *spansPath, *outPath); err != nil {
			fatalf("convert: %v", err)
		}
	default:
		fmt.Fprintln(os.Stderr, "specify -events/-spans, -check, -get, or -post (see -h)")
		os.Exit(2)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

func convert(eventsPath, spansPath, outPath string) error {
	var events []telemetry.Event
	var spans []telemetry.SpanExport
	if eventsPath != "" {
		f, err := os.Open(eventsPath)
		if err != nil {
			return err
		}
		events, err = telemetry.ParseJSONL(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", eventsPath, err)
		}
	}
	if spansPath != "" {
		f, err := os.Open(spansPath)
		if err != nil {
			return err
		}
		spans, err = telemetry.ParseSpansJSONL(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", spansPath, err)
		}
	}
	out := io.Writer(os.Stdout)
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := telemetry.WriteChromeTrace(out, spans, events); err != nil {
		return err
	}
	if outPath != "" {
		fmt.Printf("wrote %d spans + %d events to %s\n", len(spans), len(events), outPath)
	}
	return nil
}

// check validates the trace_event shape: a JSON array whose entries all
// carry string name/ph and numeric ts/pid/tid.
func check(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var entries []map[string]any
	if err := json.Unmarshal(data, &entries); err != nil {
		return 0, fmt.Errorf("not a trace_event array: %w", err)
	}
	for i, e := range entries {
		for _, k := range []string{"name", "ph"} {
			if _, ok := e[k].(string); !ok {
				return 0, fmt.Errorf("entry %d: missing string %q field", i, k)
			}
		}
		for _, k := range []string{"ts", "pid", "tid"} {
			if _, ok := e[k].(float64); !ok {
				return 0, fmt.Errorf("entry %d: missing numeric %q field", i, k)
			}
		}
	}
	return len(entries), nil
}

// post sends a JSON POST and copies the response body to stdout. A
// non-2xx status is an error (exit 1), so shell pipelines can assert on
// success without parsing; -v dumps status and headers to stderr for
// assertions on X-Cache and friends.
func post(url, data, header string, verbose bool) error {
	body := data
	if strings.HasPrefix(data, "@") {
		b, err := os.ReadFile(data[1:])
		if err != nil {
			return err
		}
		body = string(b)
	}
	req, err := http.NewRequest("POST", url, strings.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if header != "" {
		k, v, ok := strings.Cut(header, ":")
		if !ok {
			return fmt.Errorf("malformed -header %q (want Key:Value)", header)
		}
		req.Header.Set(strings.TrimSpace(k), strings.TrimSpace(v))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if verbose {
		fmt.Fprintf(os.Stderr, "status: %s\n", resp.Status)
		for _, k := range []string{"X-Cache", "X-Run-Id", "Retry-After", "Location"} {
			if v := resp.Header.Get(k); v != "" {
				fmt.Fprintf(os.Stderr, "%s: %s\n", k, v)
			}
		}
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("status %s: %s", resp.Status, b)
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

func get(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("status %s: %s", resp.Status, body)
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}
