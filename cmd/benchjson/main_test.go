package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: coolpim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEventEngine-8   	 9371869	       123.4 ns/op	       0 B/op	       0 allocs/op
BenchmarkCubeReadThroughput 	 2677753	       453.3 ns/op	 141.20 MB/s	     184 B/op	       4 allocs/op
BenchmarkFig10Speedup/dc/Naive-Offloading-8         	       3	 201048483 ns/op
PASS
ok  	coolpim	10.431s
`

func TestParse(t *testing.T) {
	snap, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Meta["cpu"] != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Errorf("cpu meta = %q", snap.Meta["cpu"])
	}
	if len(snap.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(snap.Benchmarks))
	}
	ee := snap.Benchmarks[0]
	if ee.Name != "EventEngine" || ee.Iterations != 9371869 {
		t.Errorf("first bench = %+v", ee)
	}
	if ee.Metrics["ns/op"] != 123.4 || ee.Metrics["allocs/op"] != 0 {
		t.Errorf("EventEngine metrics = %v", ee.Metrics)
	}
	cube := snap.Benchmarks[1]
	if cube.Name != "CubeReadThroughput" || cube.Metrics["MB/s"] != 141.20 {
		t.Errorf("cube bench = %+v", cube)
	}
	fig := snap.Benchmarks[2]
	if fig.Name != "Fig10Speedup/dc/Naive-Offloading" {
		t.Errorf("sub-bench name = %q (GOMAXPROCS suffix must strip, workload dashes must stay)", fig.Name)
	}
	if fig.Metrics["ns/op"] != 201048483 {
		t.Errorf("sub-bench metrics = %v", fig.Metrics)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX 12 34", // dangling value without unit
		"BenchmarkX notanumber 1 ns/op",
	} {
		if _, err := parse(bufio.NewScanner(strings.NewReader(bad))); err == nil {
			t.Errorf("parse(%q) succeeded, want error", bad)
		}
	}
}
