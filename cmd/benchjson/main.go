// benchjson converts `go test -bench` text output into the repo's
// machine-readable benchmark snapshot format (BENCH_<n>.json): one
// record per benchmark with its iteration count and every reported
// metric (ns/op, B/op, allocs/op, MB/s and custom b.ReportMetric
// units). `make bench-json` pipes the performance-trajectory benches
// through it and commits the result, so every future PR can be
// benchstat-ed against the committed baselines.
//
// Usage:
//
//	go test -run '^$' -bench ... -benchmem . | benchjson [-out FILE]
//
// Multiple concatenated `go test` outputs may be piped in; header
// lines (goos/goarch/pkg/cpu) are folded into the snapshot metadata.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name with the Benchmark prefix and the
	// trailing -<GOMAXPROCS> suffix stripped: "EventEngine",
	// "Fig10Speedup/dc/Naive-Offloading".
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Snapshot is the whole BENCH_<n>.json document.
type Snapshot struct {
	Schema     int               `json:"schema"`
	Meta       map[string]string `json:"meta"`
	Benchmarks []Benchmark       `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	snap, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(snap.Benchmarks))
}

func parse(sc *bufio.Scanner) (*Snapshot, error) {
	snap := &Snapshot{Schema: 1, Meta: map[string]string{}}
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || line == "PASS" || strings.HasPrefix(line, "ok ") ||
			strings.HasPrefix(line, "testing:") || strings.HasPrefix(line, "--- "):
			continue
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			snap.Meta[k] = strings.TrimSpace(v)
			continue
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBenchLine(line)
			if err != nil {
				return nil, fmt.Errorf("%q: %w", line, err)
			}
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	return snap, sc.Err()
}

// parseBenchLine parses one result line:
//
//	BenchmarkEventEngine-8   9371869   123.4 ns/op   0 B/op   0 allocs/op
func parseBenchLine(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, fmt.Errorf("too few fields")
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the -<GOMAXPROCS> suffix from the last path element only.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("iteration count: %w", err)
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	// The remainder is (value, unit) pairs.
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Benchmark{}, fmt.Errorf("odd value/unit tail %v", rest)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("metric %s: %w", rest[i+1], err)
		}
		b.Metrics[rest[i+1]] = v
	}
	return b, nil
}
