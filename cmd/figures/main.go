// Command figures regenerates every table and figure of the CoolPIM
// paper's evaluation and prints them as text tables.
//
// Usage:
//
//	figures -exp table1|table2|table3|table4|fig1|fig2|fig3|fig4|fig5
//	figures -exp fig10|fig11|fig12|fig13|fig14   [-profile paper|full|quick]
//	                                              [-ledger runs.jsonl [-resume]]
//	figures -all                                  (everything; the system
//	                                               figures take minutes)
//	figures -analytic                             (tables + figs 1-5 only)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"coolpim/internal/core"
	"coolpim/internal/dram"
	"coolpim/internal/experiments"
	"coolpim/internal/runner"
	"coolpim/internal/specflag"
	"coolpim/internal/telemetry"
	"coolpim/internal/telemetry/diagserver"
	"coolpim/internal/units"
)

func main() {
	// Platform, thermal-tier and network selection come from the shared
	// spec flag groups (see internal/specflag), so figures accepts and
	// rejects exactly the same platform descriptions as the other front
	// ends; the figure/experiment selection flags stay local.
	binder := specflag.New()
	binder.Profile(flag.CommandLine)
	binder.Thermal(flag.CommandLine)
	binder.Network(flag.CommandLine)
	exp := flag.String("exp", "", "experiment id (table1..table4, fig1..fig5, fig10..fig14)")
	all := flag.Bool("all", false, "run everything")
	analytic := flag.Bool("analytic", false, "run the analytic tables and figures only")
	verbose := flag.Bool("v", false, "print per-run progress")
	ledgerPath := flag.String("ledger", "", "JSONL run ledger for the system matrix (checkpointing)")
	resume := flag.Bool("resume", false, "reuse completed matrix runs from the ledger (requires -ledger)")
	diagAddr := flag.String("diag-addr", "", "serve live matrix diagnostics over HTTP on this address")
	flag.Parse()

	if *resume && *ledgerPath == "" {
		fmt.Fprintln(os.Stderr, "-resume requires -ledger")
		os.Exit(2)
	}

	spec, err := binder.Spec()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// Folded into the profile name and config hash: multi-cube figure
	// runs are ledgered and reported separately from single-cube ones.
	prof, err := spec.BuildProfile()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	analyticIDs := []string{"table1", "table2", "table3", "table4", "fig1", "fig2", "fig3", "fig4", "fig5"}
	systemIDs := []string{"fig10", "fig11", "fig12", "fig13", "fig14", "ablations"}

	var ids []string
	switch {
	case *all:
		ids = append(analyticIDs, systemIDs...)
	case *analytic:
		ids = analyticIDs
	case *exp != "":
		ids = strings.Split(*exp, ",")
	default:
		fmt.Fprintln(os.Stderr, "specify -exp <id>, -analytic, or -all")
		os.Exit(2)
	}

	// The Fig. 10-13 matrix is shared across those figures; run it once.
	var rows []experiments.Row
	needMatrix := false
	for _, id := range ids {
		switch id {
		case "fig10", "fig11", "fig12", "fig13":
			needMatrix = true
		}
	}
	if needMatrix {
		fmt.Printf("## running %s-profile system matrix (10 workloads × 5 configs; this takes a while)\n\n", prof.Name)
		progress := func(string) {}
		if *verbose {
			progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
		}
		var ledger *runner.Ledger
		if *ledgerPath != "" {
			var err error
			ledger, err = runner.OpenLedger(*ledgerPath, *resume)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ledger:", err)
				os.Exit(1)
			}
			defer ledger.Close()
		}
		opts := experiments.MatrixOpts{
			Parallel: 1,
			Ledger:   ledger,
			Progress: progress,
		}
		if *diagAddr != "" {
			diag, err := diagserver.New(*diagAddr)
			if err != nil {
				fmt.Fprintln(os.Stderr, "diag:", err)
				os.Exit(1)
			}
			defer diag.Close()
			tel := telemetry.New()
			tel.Spans.SetWallClock(func() int64 { return time.Now().UnixNano() })
			tel.Sink = diag
			tel.RunID = "figures/" + prof.Name
			opts.Telemetry = tel
			fmt.Fprintf(os.Stderr, "diag: serving on http://%s (endpoints: /metrics /healthz /runs /spans /debug/pprof)\n", diag.Addr())
			opts.OnRunStart = func(key string, attempt int) { diag.Runs().Started(key, attempt) }
			opts.OnRunDone = func(key string, err error, fromLedger bool) {
				diag.Runs().Finished(key, err, fromLedger, 0)
				tel.Publish(0)
			}
		}
		var err error
		rows, err = experiments.RunMatrixOpts(context.Background(), prof, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "matrix failed:", err)
			os.Exit(1)
		}
	}

	for _, id := range ids {
		switch id {
		case "table1":
			printTable1()
		case "table2":
			printTable2()
		case "table3":
			printTable3()
		case "table4":
			printTable4(prof)
		case "fig1":
			check(printFig1())
		case "fig2":
			check(printFig2())
		case "fig3":
			check(printFig3())
		case "fig4":
			check(printFig4())
		case "fig5":
			check(printFig5())
		case "fig10":
			printFig10(rows)
		case "fig11":
			printFig11(rows)
		case "fig12":
			printFig12(rows)
		case "fig13":
			printFig13(rows)
		case "fig14":
			printFig14(prof)
		case "ablations":
			printAblations(prof)
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			os.Exit(2)
		}
	}
}

func printTable1() {
	fmt.Println("## Table I — HMC memory transaction bandwidth requirement (FLIT size: 128-bit)")
	fmt.Printf("%-28s %-10s %-10s\n", "Type", "Request", "Response")
	for _, r := range experiments.Table1() {
		fmt.Printf("%-28s %-10d %-10d\n", r.Type, r.ReqFlits, r.RespFlits)
	}
	fmt.Println()
}

func printTable2() {
	fmt.Println("## Table II — typical cooling types")
	fmt.Printf("%-36s %-18s %-12s %s\n", "Type", "Thermal Resistance", "Fan (rel.)", "Fan (abs.)")
	for _, r := range experiments.Table2() {
		fmt.Printf("%-36s %-18v %-12.0f %v\n", r.Type, r.Resistance, r.FanPowerRel, r.FanPower)
	}
	fmt.Println()
}

func printTable3() {
	fmt.Println("## Table III — PIM instruction mapping")
	fmt.Printf("%-12s %-18s %s\n", "Class", "PIM instruction", "Non-PIM (CUDA)")
	for _, r := range experiments.Table3() {
		fmt.Printf("%-12s %-18s %s\n", r.Class, r.PIM, r.NonPIM)
	}
	fmt.Println()
}

func printTable4(prof experiments.Profile) {
	cfg := prof.Sys
	fmt.Println("## Table IV — performance evaluation configuration")
	fmt.Printf("Host      GPU, %d SMs, 32 threads/warp, %.1fGHz\n", cfg.GPU.NumSMs, cfg.GPU.ClockGHz)
	fmt.Printf("          %dKB private L1D, %dKB %d-way L2 cache\n",
		cfg.GPU.L1.SizeBytes>>10, cfg.GPU.L2.SizeBytes>>10, cfg.GPU.L2.Ways)
	fmt.Printf("HMC       8GB cube, 1 logic die, 8 DRAM dies, %d vaults, %d banks\n",
		cfg.HMC.Vaults, cfg.HMC.Vaults*cfg.HMC.BanksPerVault)
	t := cfg.HMC.Timing
	fmt.Printf("          tCL=tRCD=tRP=%v, tRAS=%v\n", t.TCL, t.TRAS)
	fmt.Printf("          %d links per package, %.0fGB/s per link\n",
		cfg.HMC.Links, 2*cfg.HMC.LinkDirGBps)
	fmt.Printf("DRAM      temp phases: 0-85°C, 85-95°C, 95-105°C; 20%% freq reduction per high phase\n")
	fmt.Printf("Benchmark GraphBIG workloads, LDBC-like RMAT graph (scale %d, 2^%d vertices, ~%d edges)\n",
		prof.Scale, prof.Scale, prof.EdgeFactor*(1<<prof.Scale))
	fmt.Println()
}

// check aborts on an analytic-sweep failure (a non-converged steady
// solve) instead of printing a half-relaxed figure.
func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func printFig1() error {
	fmt.Println("## Fig. 1 — HMC 1.1 prototype thermal evaluation (surface temperatures)")
	fmt.Printf("%-28s %-6s %-14s %-12s %-18s %s\n", "Cooling", "State", "Model surface", "Model die", "Paper surface", "Shutdown?")
	pts, err := experiments.Fig1()
	if err != nil {
		return err
	}
	for _, p := range pts {
		state := "idle"
		if p.Busy {
			state = "busy"
		}
		shut := ""
		if p.Shutdown {
			shut = "SHUTDOWN (cannot sustain full bandwidth)"
		}
		fmt.Printf("%-28s %-6s %-14s %-12s %-18s %s\n",
			p.Cooling, state, experiments.FmtCelsius(p.Surface),
			experiments.FmtCelsius(p.Die), experiments.FmtCelsius(p.PaperSurface), shut)
	}
	fmt.Println()
	return nil
}

func printFig2() error {
	fmt.Println("## Fig. 2 — thermal model validation (busy HMC 1.1)")
	fmt.Printf("%-28s %-18s %-16s %s\n", "Cooling", "Surface (measured)", "Die (estimated)", "Die (modeled)")
	rows, err := experiments.Fig2()
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("%-28s %-18s %-16s %s\n", r.Cooling,
			experiments.FmtCelsius(r.SurfaceMeasured),
			experiments.FmtCelsius(r.DieEstimated),
			experiments.FmtCelsius(r.DieModeled))
	}
	fmt.Println()
	return nil
}

func printFig3() error {
	res, err := experiments.Fig3()
	if err != nil {
		return err
	}
	fmt.Println("## Fig. 3 — heat map at full bandwidth, commodity-server cooling")
	fmt.Println("Per-layer peaks (bottom to top):")
	for l, p := range res.LayerPeaks {
		name := fmt.Sprintf("DRAM die %d", l)
		if l == 0 {
			name = "logic die"
		}
		fmt.Printf("  %-12s %s\n", name, experiments.FmtCelsius(p))
	}
	fmt.Println("Logic-layer map (°C per vault cell):")
	for _, row := range res.LogicMap {
		for _, c := range row {
			fmt.Printf(" %6.1f", float64(c))
		}
		fmt.Println()
	}
	fmt.Println()
	return nil
}

func printFig4() error {
	fmt.Println("## Fig. 4 — peak DRAM temperature vs data bandwidth")
	pts, err := experiments.Fig4(9)
	if err != nil {
		return err
	}
	fmt.Printf("%-14s", "BW (GB/s)")
	headers := []string{"Passive", "Low-end", "Commodity", "High-end"}
	for _, h := range headers {
		fmt.Printf(" %-12s", h)
	}
	fmt.Println()
	// Points are grouped by cooling; re-index by bandwidth.
	byBW := map[int][]string{}
	var order []int
	for _, p := range pts {
		key := int(p.Bandwidth.GBps())
		if _, ok := byBW[key]; !ok {
			order = append(order, key)
		}
		cell := experiments.FmtCelsius(p.PeakDRAM)
		if p.Phase == dram.PhaseShutdown {
			cell += "(X)"
		}
		byBW[key] = append(byBW[key], cell)
	}
	seen := map[int]bool{}
	for _, bw := range order {
		if seen[bw] {
			continue
		}
		seen[bw] = true
		fmt.Printf("%-14d", bw)
		for _, c := range byBW[bw] {
			fmt.Printf(" %-12s", c)
		}
		fmt.Println()
	}
	fmt.Println("(X) = beyond the 105°C operating limit (thermal shutdown)")
	fmt.Println()
	return nil
}

func printFig5() error {
	fmt.Println("## Fig. 5 — thermal impact of PIM offloading (full BW, commodity cooling)")
	fmt.Printf("%-14s %-10s %s\n", "PIM (op/ns)", "Peak DRAM", "Phase")
	pts, err := experiments.Fig5(14)
	if err != nil {
		return err
	}
	for _, p := range pts {
		fmt.Printf("%-14.1f %-10s %v\n", float64(p.PIMRate), experiments.FmtCelsius(p.PeakDRAM), p.Phase)
	}
	thr, err := experiments.MaxSafePIMRate()
	if err != nil {
		return err
	}
	fmt.Printf("max safe rate (<=85°C): %v (paper: 1.3 op/ns)\n\n", thr)
	return nil
}

func matrixHeader() []core.PolicyKind {
	return []core.PolicyKind{core.NaiveOffloading, core.CoolPIMSW, core.CoolPIMHW, core.IdealThermal}
}

func printFig10(rows []experiments.Row) {
	fmt.Println("## Fig. 10 — speedup over the non-offloading baseline")
	fmt.Printf("%-10s", "workload")
	for _, k := range matrixHeader() {
		fmt.Printf(" %-18v", k)
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-10s", r.Workload)
		for _, k := range matrixHeader() {
			fmt.Printf(" %-18.3f", r.Speedup(k))
		}
		fmt.Println()
	}
	fmt.Printf("%-10s", "gmean")
	for _, k := range matrixHeader() {
		k := k
		fmt.Printf(" %-18.3f", experiments.GeoMean(rows, func(r experiments.Row) float64 { return r.Speedup(k) }))
	}
	fmt.Println()
	fmt.Println()
}

func printFig11(rows []experiments.Row) {
	fmt.Println("## Fig. 11 — bandwidth consumption normalized to non-offloading")
	fmt.Printf("%-10s", "workload")
	for _, k := range matrixHeader() {
		fmt.Printf(" %-18v", k)
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-10s", r.Workload)
		for _, k := range matrixHeader() {
			fmt.Printf(" %-18.3f", r.NormBW(k))
		}
		fmt.Println()
	}
	fmt.Println()
}

func printFig12(rows []experiments.Row) {
	fmt.Println("## Fig. 12 — average PIM offloading rate (op/ns)")
	pols := []core.PolicyKind{core.NaiveOffloading, core.CoolPIMSW, core.CoolPIMHW}
	fmt.Printf("%-10s", "workload")
	for _, k := range pols {
		fmt.Printf(" %-18v", k)
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-10s", r.Workload)
		for _, k := range pols {
			fmt.Printf(" %-18.2f", float64(r.Results[k].AvgPIMRate))
		}
		fmt.Println()
	}
	fmt.Println()
}

func printFig13(rows []experiments.Row) {
	fmt.Println("## Fig. 13 — peak DRAM temperature (°C)")
	pols := []core.PolicyKind{core.NaiveOffloading, core.CoolPIMSW, core.CoolPIMHW}
	fmt.Printf("%-10s", "workload")
	for _, k := range pols {
		fmt.Printf(" %-18v", k)
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-10s", r.Workload)
		for _, k := range pols {
			fmt.Printf(" %-18.1f", float64(r.Results[k].PeakDRAM))
		}
		fmt.Println()
	}
	fmt.Println()
}

func printAblationPoints(title string, pts []experiments.AblationPoint) {
	fmt.Printf("### %s\n", title)
	fmt.Printf("%-28s %-9s %-11s %-10s %-8s %s\n", "variant", "speedup", "PIM rate", "peak temp", "updates", "shutdown")
	for _, p := range pts {
		shut := ""
		if p.Shutdown {
			shut = "SHUTDOWN"
		}
		fmt.Printf("%-28s %-9.3f %-11.2f %-10.1f %-8d %s\n",
			p.Label, p.Speedup, float64(p.PIMRate), float64(p.PeakDRAM), p.Updates, shut)
	}
	fmt.Println()
}

func printAblations(prof experiments.Profile) {
	fmt.Println("## Ablations — CoolPIM design-parameter sweeps (dc workload)")
	type study struct {
		title string
		run   func() ([]experiments.AblationPoint, error)
	}
	studies := []study{
		{"HW-DynT control factor (Section IV-B trade-off)", func() ([]experiments.AblationPoint, error) {
			return experiments.AblationControlFactor(prof, "dc", []int{2, 8, 16, 48})
		}},
		{"Delayed control updates: settle window (Section IV-C)", func() ([]experiments.AblationPoint, error) {
			return experiments.AblationSettleTime(prof, "dc", []units.Time{
				100 * units.Microsecond, 500 * units.Microsecond, units.Millisecond, 4 * units.Millisecond})
		}},
		{"SW-DynT Eq.1 margin (paper uses 4)", func() ([]experiments.AblationPoint, error) {
			return experiments.AblationMargin(prof, "dc", []int{0, 4, 16, 64})
		}},
		{"Cooling solution sensitivity (naive offloading)", func() ([]experiments.AblationPoint, error) {
			return experiments.AblationCooling(prof, "dc")
		}},
		{"Multi-level thermal warnings (footnote-4 extension)", func() ([]experiments.AblationPoint, error) {
			return experiments.AblationMultiLevel(prof, "dc")
		}},
	}
	for _, st := range studies {
		pts, err := st.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", st.title, err)
			continue
		}
		printAblationPoints(st.title, pts)
	}
}

func printFig14(prof experiments.Profile) {
	// The paper plots bfs-ta; on this platform bfs-ta never crosses the
	// thermal threshold, so sssp-twc — which shows the strongest
	// closed-loop dynamics — carries the figure (see EXPERIMENTS.md).
	const workload = "sssp-twc"
	fmt.Printf("## Fig. 14 — PIM rate over time (%s; paper uses bfs-ta, see EXPERIMENTS.md)\n", workload)
	series, err := experiments.Fig14Series(prof, workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fig14 failed:", err)
		return
	}
	pols := []core.PolicyKind{core.NaiveOffloading, core.CoolPIMSW, core.CoolPIMHW}
	fmt.Printf("%-12s %-14s %-14s %-14s\n", "t (ms)", "Naive", "CoolPIM(SW)", "CoolPIM(HW)")
	maxLen := 0
	for _, p := range pols {
		if len(series[p]) > maxLen {
			maxLen = len(series[p])
		}
	}
	for i := 0; i < maxLen; i++ {
		var t units.Time
		cells := make([]string, len(pols))
		for j, p := range pols {
			if i < len(series[p]) {
				t = series[p][i].At
				cells[j] = fmt.Sprintf("%.2f", float64(series[p][i].PIMRate))
			} else {
				cells[j] = "-"
			}
		}
		fmt.Printf("%-12.2f %-14s %-14s %-14s\n", t.Milliseconds(), cells[0], cells[1], cells[2])
	}
	fmt.Println()
}
